"""FaaS-style image compression utility (paper section 6, Figure 15).

Each client (think: one user's photo collection) runs as its *own
process* so collections are isolated from each other — on Clio this is
free (a PID per client), while on RDMA every client needs its own MR for
protection, which is exactly what makes RDMA's Figure 15 curve grow with
the client count.

The compressor is a real byte-level RLE codec, and images are synthetic
grayscale rasters with run structure, so the workload moves real bytes
through the remote-memory path and verifies them.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.rdma import RDMAMemoryNode
from repro.clib.client import ClioThread
from repro.sim.rng import RandomStream

#: CN-side compute cost of the codec, per input byte (a few cycles/byte).
COMPRESS_NS_PER_BYTE = 1.2
DECOMPRESS_NS_PER_BYTE = 0.8


def synthetic_image(rng: RandomStream, side: int = 256) -> bytes:
    """A side x side grayscale raster with run structure (compressible)."""
    total = side * side
    out = bytearray()
    while len(out) < total:
        run = min(rng.uniform_int(4, 64), total - len(out))
        out.extend(bytes([rng.uniform_int(0, 255)]) * run)
    return bytes(out)


def rle_compress(data: bytes) -> bytes:
    """Byte-level run-length encoding: (count, value) pairs, count <= 255."""
    if not data:
        return b""
    out = bytearray()
    current = data[0]
    count = 1
    for byte in data[1:]:
        if byte == current and count < 255:
            count += 1
        else:
            out.append(count)
            out.append(current)
            current = byte
            count = 1
    out.append(count)
    out.append(current)
    return bytes(out)


def rle_decompress(data: bytes) -> bytes:
    """Inverse of :func:`rle_compress`."""
    if len(data) % 2:
        raise ValueError("RLE stream must have even length")
    out = bytearray()
    for index in range(0, len(data), 2):
        out.extend(bytes([data[index + 1]]) * data[index])
    return bytes(out)


class ImageCompressionClient:
    """One client of the utility on Clio: two remote arrays + the codec."""

    def __init__(self, thread: ClioThread, rng: RandomStream,
                 image_side: int = 256, slots: int = 16):
        self.thread = thread
        self.env = thread.env
        self.rng = rng
        self.image_side = image_side
        self.image_bytes = image_side * image_side
        self.slots = slots
        # Compressed slots get 2x room (RLE can expand adversarial input).
        self.compressed_slot = 2 * self.image_bytes
        self.original_va: Optional[int] = None
        self.compressed_va: Optional[int] = None
        self.images_processed = 0

    def setup(self):
        """Process-generator: allocate the two arrays and upload originals."""
        self.original_va = yield from self.thread.ralloc(
            self.slots * self.image_bytes)
        self.compressed_va = yield from self.thread.ralloc(
            self.slots * self.compressed_slot)
        for slot in range(self.slots):
            image = synthetic_image(self.rng, self.image_side)
            yield from self.thread.rwrite(
                self.original_va + slot * self.image_bytes, image)

    def compress_one(self, slot: int):
        """Process-generator: rread original -> compress -> rwrite back.

        Returns the compressed size.
        """
        image = yield from self.thread.rread(
            self.original_va + slot * self.image_bytes, self.image_bytes)
        yield self.env.timeout(int(len(image) * COMPRESS_NS_PER_BYTE))
        compressed = rle_compress(image)
        header = len(compressed).to_bytes(4, "little")
        yield from self.thread.rwrite(
            self.compressed_va + slot * self.compressed_slot,
            header + compressed)
        self.images_processed += 1
        return len(compressed)

    def decompress_one(self, slot: int):
        """Process-generator: read compressed, decode, verify roundtrip.

        Returns the decoded image.
        """
        header = yield from self.thread.rread(
            self.compressed_va + slot * self.compressed_slot, 4)
        length = int.from_bytes(header, "little")
        compressed = yield from self.thread.rread(
            self.compressed_va + slot * self.compressed_slot + 4, length)
        yield self.env.timeout(int(self.image_bytes * DECOMPRESS_NS_PER_BYTE))
        self.images_processed += 1
        return rle_decompress(compressed)

    def run_workload(self, operations: int):
        """Process-generator: alternate compress/decompress over the slots.

        Returns total runtime in ns.
        """
        start = self.env.now
        for index in range(operations):
            slot = index % self.slots
            yield from self.compress_one(slot)
            yield from self.decompress_one(slot)
        return self.env.now - start


class RDMAImageCompressionClient:
    """The same utility on native RDMA: one MR per client (protection)."""

    def __init__(self, env, node: RDMAMemoryNode, rng: RandomStream,
                 image_side: int = 256, slots: int = 16):
        self.env = env
        self.node = node
        self.rng = rng
        self.image_side = image_side
        self.image_bytes = image_side * image_side
        self.slots = slots
        self.compressed_slot = 2 * self.image_bytes
        self.qp = node.create_qp()
        self.region = None

    def setup(self):
        """Process-generator: register this client's MR + upload originals.

        The per-client MR is mandatory — clients' photos must be protected
        from each other, and the MR is RDMA's only protection domain.
        """
        size = self.slots * (self.image_bytes + self.compressed_slot)
        self.region = yield from self.node.register_mr(size, pinned=True)
        for slot in range(self.slots):
            image = synthetic_image(self.rng, self.image_side)
            yield from self.node.write(self.qp, self.region,
                                       slot * self.image_bytes, image)

    def _compressed_offset(self, slot: int) -> int:
        return self.slots * self.image_bytes + slot * self.compressed_slot

    def compress_one(self, slot: int):
        image, _ = yield from self.node.read(
            self.qp, self.region, slot * self.image_bytes, self.image_bytes)
        yield self.env.timeout(int(len(image) * COMPRESS_NS_PER_BYTE))
        compressed = rle_compress(image)
        header = len(compressed).to_bytes(4, "little")
        yield from self.node.write(self.qp, self.region,
                                   self._compressed_offset(slot),
                                   header + compressed)
        return len(compressed)

    def decompress_one(self, slot: int):
        header, _ = yield from self.node.read(
            self.qp, self.region, self._compressed_offset(slot), 4)
        length = int.from_bytes(header, "little")
        compressed, _ = yield from self.node.read(
            self.qp, self.region, self._compressed_offset(slot) + 4, length)
        yield self.env.timeout(int(self.image_bytes * DECOMPRESS_NS_PER_BYTE))
        return rle_decompress(compressed)

    def run_workload(self, operations: int):
        start = self.env.now
        for index in range(operations):
            slot = index % self.slots
            yield from self.compress_one(slot)
            yield from self.decompress_one(slot)
        return self.env.now - start

"""Embedding-table lookups over disaggregated memory (the intro's third
motivating workload: deep learning).

Recommendation models keep huge, sparsely-accessed embedding tables —
the textbook far-memory candidate.  The table lives in one RAS as a
dense [rows x dim] float32 matrix; a training/serving step gathers a
batch of rows.  Three gather strategies, in ascending sophistication:

* ``gather(..., strategy="sync")`` — one rread per row;
* ``gather(..., strategy="async")`` — the batch's rows fetched with
  overlapped async reads;
* ``gather(..., strategy="offload")`` — ONE network round trip: a gather
  offload at the MN reads all rows locally and returns them packed
  (section 4.6's reason to exist: "avoid network round trips when
  working with complex data structures and/or data-intensive operations").
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.clib.client import ClioThread
from repro.core.extend import ExtendPath, OffloadContext
from repro.sim.rng import RandomStream
from repro.workloads.zipf import zipfian_keys

FLOAT = 4
#: FPGA cycles per gathered row (address math + response packing).
GATHER_ROW_CYCLES = 4


def gather_offload(ctx: OffloadContext, args, caller_pid: int):
    """MN-side gather: read ``rows`` from the caller's table, pack them.

    Rows are fetched through the pipelined gather engine
    (:meth:`OffloadContext.read_many`): multiple DRAM reads in flight,
    like the hardware a real gather offload would synthesize.
    """
    table_va, dim, rows = args
    row_bytes = dim * FLOAT
    extents = [(table_va + row * row_bytes, row_bytes) for row in rows]
    blobs = yield from ctx.read_many(extents, pid=caller_pid)
    yield from ctx._compute(GATHER_ROW_CYCLES * len(rows))
    return b"".join(blobs)


def register_gather_offload(extend_path: ExtendPath,
                            name: str = "embedding-gather") -> None:
    extend_path.register(name, gather_offload, on_fpga=True)


class RemoteEmbeddingTable:
    """A [rows x dim] float32 embedding table resident at the MN."""

    def __init__(self, thread: ClioThread, rows: int, dim: int,
                 offload_name: str = "embedding-gather"):
        if rows <= 0 or dim <= 0:
            raise ValueError(f"rows and dim must be positive, got {rows}x{dim}")
        self.thread = thread
        self.env = thread.env
        self.rows = rows
        self.dim = dim
        self.offload_name = offload_name
        self.row_bytes = dim * FLOAT
        self._table_va: Optional[int] = None

    # -- lifecycle ------------------------------------------------------------------

    def initialize(self, rng: RandomStream):
        """Process-generator: allocate and fill with deterministic values."""
        self._table_va = yield from self.thread.ralloc(
            self.rows * self.row_bytes)
        # Initialize in chunks of whole rows to bound packet sizes.
        chunk_rows = max(1, 8192 // self.row_bytes)
        for start in range(0, self.rows, chunk_rows):
            count = min(chunk_rows, self.rows - start)
            blob = b"".join(
                self._row_bytes_for(start + index, rng)
                for index in range(count))
            yield from self.thread.rwrite(
                self._table_va + start * self.row_bytes, blob)

    def _row_bytes_for(self, row: int, rng: RandomStream) -> bytes:
        values = [rng.fork(f"row{row}").uniform(-1.0, 1.0)
                  for _ in range(self.dim)]
        return struct.pack(f"<{self.dim}f", *values)

    def _check_rows(self, rows) -> None:
        if self._table_va is None:
            raise RuntimeError("initialize() first")
        for row in rows:
            if not 0 <= row < self.rows:
                raise ValueError(f"row {row} out of range")

    @staticmethod
    def unpack_row(blob: bytes) -> tuple:
        return struct.unpack(f"<{len(blob) // FLOAT}f", blob)

    # -- gathers --------------------------------------------------------------------

    def gather(self, rows: list[int], strategy: str = "offload"):
        """Process-generator: fetch the given rows; returns list of bytes."""
        self._check_rows(rows)
        if strategy == "sync":
            out = []
            for row in rows:
                blob = yield from self.thread.rread(
                    self._table_va + row * self.row_bytes, self.row_bytes)
                out.append(blob)
            return out
        if strategy == "async":
            handles = []
            for row in rows:
                handle = yield from self.thread.rread_async(
                    self._table_va + row * self.row_bytes, self.row_bytes)
                handles.append(handle)
            out = []
            for handle in handles:
                (completion,) = yield from self.thread.rpoll([handle])
                blob = completion.result
                out.append(blob)
            return out
        if strategy == "offload":
            packed = yield from self.thread.invoke_offload(
                self.offload_name, (self._table_va, self.dim, list(rows)))
            return [packed[index * self.row_bytes:(index + 1) * self.row_bytes]
                    for index in range(len(rows))]
        raise ValueError(f"unknown strategy {strategy!r}")

    def update_row(self, row: int, blob: bytes):
        """Process-generator: write one row back (a gradient step)."""
        self._check_rows([row])
        if len(blob) != self.row_bytes:
            raise ValueError(
                f"row blob must be {self.row_bytes} bytes, got {len(blob)}")
        yield from self.thread.rwrite(
            self._table_va + row * self.row_bytes, blob)

    def batch_of(self, batch_size: int, rng: RandomStream,
                 zipf_theta: float = 0.9) -> list[int]:
        """A realistic skewed batch of row ids (hot embeddings dominate)."""
        keys = zipfian_keys(rng, self.rows, zipf_theta)
        return [next(keys) for _ in range(batch_size)]

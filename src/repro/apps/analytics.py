"""Columnar analytics over disaggregated memory (the intro's second
motivating workload).

A fixed-width columnar table lives in one RAS, one allocation per column.
Scans stream a column through the CN in chunks; the async variant keeps a
pipeline of chunk reads in flight so the network round trips overlap with
CN-side filtering/aggregation — the far-memory analytics pattern.

Columns hold little-endian i64 values.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.clib.client import ClioThread

WORD = 8
#: CN-side cost of filtering/aggregating one value (a few ns each).
COMPUTE_NS_PER_VALUE = 2


def _pack(values) -> bytes:
    out = bytearray()
    for value in values:
        out += int(value).to_bytes(WORD, "little", signed=True)
    return bytes(out)


def _unpack(blob: bytes) -> list[int]:
    return [int.from_bytes(blob[index:index + WORD], "little", signed=True)
            for index in range(0, len(blob), WORD)]


class RemoteColumnTable:
    """A set of equal-length i64 columns stored remotely."""

    def __init__(self, thread: ClioThread, chunk_rows: int = 512,
                 pipeline_depth: int = 8):
        if chunk_rows <= 0:
            raise ValueError(f"chunk_rows must be positive, got {chunk_rows}")
        if pipeline_depth <= 0:
            raise ValueError(
                f"pipeline_depth must be positive, got {pipeline_depth}")
        self.thread = thread
        self.env = thread.env
        self.chunk_rows = chunk_rows
        self.pipeline_depth = pipeline_depth
        self.rows = 0
        self._columns: dict[str, int] = {}   # name -> base VA

    def load(self, columns: dict[str, list[int]]):
        """Process-generator: upload columns (all must share a length)."""
        if not columns:
            raise ValueError("need at least one column")
        lengths = {len(values) for values in columns.values()}
        if len(lengths) != 1:
            raise ValueError(f"column lengths differ: {lengths}")
        self.rows = lengths.pop()
        for name, values in columns.items():
            va = yield from self.thread.ralloc(max(WORD * self.rows, WORD))
            if values:
                yield from self.thread.rwrite(va, _pack(values))
            self._columns[name] = va

    def _column_va(self, name: str) -> int:
        va = self._columns.get(name)
        if va is None:
            raise KeyError(f"no column {name!r}")
        return va

    # -- scans ---------------------------------------------------------------------

    def _chunks(self) -> list[tuple[int, int]]:
        out = []
        row = 0
        while row < self.rows:
            count = min(self.chunk_rows, self.rows - row)
            out.append((row, count))
            row += count
        return out

    def scan(self, name: str, asynchronous: bool = True):
        """Process-generator: yield-all scan; returns the column values.

        The async variant keeps ``pipeline_depth`` chunk reads in flight.
        """
        va = self._column_va(name)
        values: list[int] = []
        chunks = self._chunks()
        if not asynchronous:
            for row, count in chunks:
                blob = yield from self.thread.rread(
                    va + WORD * row, WORD * count)
                yield self.env.timeout(COMPUTE_NS_PER_VALUE * count)
                values.extend(_unpack(blob))
            return values
        inflight = []
        for row, count in chunks:
            handle = yield from self.thread.rread_async(
                va + WORD * row, WORD * count)
            inflight.append((handle, count))
            if len(inflight) >= self.pipeline_depth:
                handle, count = inflight.pop(0)
                (completion,) = yield from self.thread.rpoll([handle])
                blob = completion.result
                yield self.env.timeout(COMPUTE_NS_PER_VALUE * count)
                values.extend(_unpack(blob))
        for handle, count in inflight:
            (completion,) = yield from self.thread.rpoll([handle])
            blob = completion.result
            yield self.env.timeout(COMPUTE_NS_PER_VALUE * count)
            values.extend(_unpack(blob))
        return values

    # -- kernels --------------------------------------------------------------------

    def filter_aggregate(self, filter_column: str,
                         predicate: Callable[[int], bool],
                         aggregate_column: Optional[str] = None,
                         asynchronous: bool = True):
        """Process-generator: SELECT sum(agg) WHERE predicate(filter).

        Returns ``(matching_rows, total)``; with no aggregate column the
        total sums the filter column itself.
        """
        filter_values = yield from self.scan(filter_column,
                                             asynchronous=asynchronous)
        if aggregate_column is None or aggregate_column == filter_column:
            aggregate_values = filter_values
        else:
            aggregate_values = yield from self.scan(
                aggregate_column, asynchronous=asynchronous)
        matches = 0
        total = 0
        for keep, value in zip(filter_values, aggregate_values):
            if predicate(keep):
                matches += 1
                total += value
        return matches, total

    def column_minmax(self, name: str, asynchronous: bool = True):
        """Process-generator: (min, max) of a column."""
        values = yield from self.scan(name, asynchronous=asynchronous)
        if not values:
            raise ValueError("empty column")
        return min(values), max(values)

    def update_rows(self, name: str, updates: dict[int, int]):
        """Process-generator: point updates (row -> new value)."""
        va = self._column_va(name)
        for row, value in sorted(updates.items()):
            if not 0 <= row < self.rows:
                raise ValueError(f"row {row} out of range")
            yield from self.thread.rwrite(
                va + WORD * row, _pack([value]))

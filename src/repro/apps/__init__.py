"""Applications on Clio.

The paper's three (section 6):

* :mod:`repro.apps.image_compression` — a FaaS-style utility using only
  the basic CLib APIs (one process per client for isolation, R5);
* :mod:`repro.apps.radix_tree` — a pointer-linked radix tree searched via
  an extended pointer-chasing offload (one RTT per chase);
* :mod:`repro.apps.kv_store` — Clio-KV, a key-value store running *at*
  the MN as a computation offload, with atomic writes and read-committed
  reads.

Plus the intro's motivating workloads, built on the same public API:

* :mod:`repro.apps.graph` — CSR graph storage and BFS with async
  frontier fetching;
* :mod:`repro.apps.analytics` — columnar scans and filter/aggregate
  kernels with pipelined chunk reads;
* :mod:`repro.apps.embeddings` — DLRM-style embedding gathers, including
  a one-round-trip offloaded gather.
"""

from repro.apps.analytics import RemoteColumnTable
from repro.apps.embeddings import RemoteEmbeddingTable, register_gather_offload
from repro.apps.graph import RemoteGraph, random_graph, reference_bfs
from repro.apps.image_compression import (
    ImageCompressionClient,
    RDMAImageCompressionClient,
    rle_compress,
    rle_decompress,
    synthetic_image,
)
from repro.apps.kv_store import ClioKV, register_kv_offload
from repro.apps.radix_tree import (
    NODE_BYTES,
    ClioRadixTree,
    RDMARadixTree,
    register_chase_offload,
)

__all__ = [
    "ClioKV",
    "ClioRadixTree",
    "ImageCompressionClient",
    "NODE_BYTES",
    "RDMAImageCompressionClient",
    "RDMARadixTree",
    "RemoteColumnTable",
    "RemoteEmbeddingTable",
    "RemoteGraph",
    "random_graph",
    "reference_bfs",
    "register_chase_offload",
    "register_gather_offload",
    "register_kv_offload",
    "rle_compress",
    "rle_decompress",
    "synthetic_image",
]

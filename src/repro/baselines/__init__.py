"""Baseline systems the paper evaluates against (section 7).

* :mod:`repro.baselines.rdma` — native one-sided RDMA on a commodity RNIC,
  with its finite QP/PTE/MR caches, PCIe miss penalties, MR registration,
  and the 16.8 ms ODP page-fault path.
* :mod:`repro.baselines.legoos` — LegoOS-style software virtual memory at
  the MN (thread pool + hash lookup) over RDMA.
* :mod:`repro.baselines.clover` — Clover adapted as passive disaggregated
  memory (PDM): no MN processing, client-side management, >= 2 RTT writes.
* :mod:`repro.baselines.herd` — HERD RPC key-value over RDMA, on a host
  CPU or on a BlueField SmartNIC (chip-crossing penalty).

These are timing models calibrated to the paper's cited measurements, not
packet-level simulations: the comparison figures depend on cache-capacity
cliffs, fault-path costs, and per-op handling budgets, all of which are
first-class here.
"""

from repro.baselines.api import (
    BACKEND_NAMES,
    BACKENDS,
    BackendCapability,
    ClioBackend,
    CloverBackend,
    HERDBackend,
    HERDBlueFieldBackend,
    LegoOSBackend,
    MemoryBackend,
    RDMABackend,
    create_backend,
)
from repro.baselines.clover import CloverStore
from repro.baselines.herd import HERDServer
from repro.baselines.legoos import LegoOSMemoryNode
from repro.baselines.rdma import MRRegistrationError, RDMAMemoryNode, MemoryRegion

__all__ = [
    "BACKEND_NAMES",
    "BACKENDS",
    "BackendCapability",
    "ClioBackend",
    "CloverBackend",
    "CloverStore",
    "HERDBackend",
    "HERDBlueFieldBackend",
    "HERDServer",
    "LegoOSBackend",
    "LegoOSMemoryNode",
    "MemoryBackend",
    "MRRegistrationError",
    "MemoryRegion",
    "RDMABackend",
    "RDMAMemoryNode",
    "create_backend",
]

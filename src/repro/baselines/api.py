"""One protocol over every comparison backend (`MemoryBackend`).

The paper's evaluation compares four systems with four mutually
incompatible APIs: ``qp/region`` verbs in :mod:`repro.baselines.rdma`,
``pid/va`` software VM in :mod:`repro.baselines.legoos`, ``put/get`` KV
in :mod:`repro.baselines.clover` and :mod:`repro.baselines.herd`, and
Clio's own CLib threads.  Every figure benchmark and the ``repro
compare`` CLI used to hand-code one loop per system.  This module
defines the single surface they now iterate over:

* :class:`BackendCapability` — what a backend can do natively, so a
  benchmark can skip (or adapt) what a paradigm fundamentally lacks;
* :class:`MemoryBackend` — ``setup / alloc / free / read / write`` as
  process-generators with uniform return conventions (``read`` returns
  ``(bytes, latency_ns)``, ``write`` returns ``latency_ns``);
* thin adapters wrapping each existing class **without changing it** —
  the legacy classes stay importable and behavior-identical, and every
  adapter is seeded so same-seed runs produce bit-identical latency
  sequences (the conformance suite pins them);
* :func:`create_backend` — the one factory the CLI and benchmarks use,
  honoring :class:`repro.params.BackendParams` for setup knobs.

Data semantics are uniform: allocations read as zeros until written
(matching :class:`repro.core.memory.DRAM`), and a read returns exactly
the bytes the most recent write left at that range.  KV-substrate
adapters (Clover, HERD's KV mode is not used here — its raw RPC path
is) honor this for the access patterns the conformance suite drives:
reads of ranges that were either written as a unit or never written.
"""

from __future__ import annotations

import abc
import enum
import itertools
import warnings
from typing import Optional

from repro.params import ClioParams, DEFAULT_PARAMS

GB = 1 << 30
MB = 1 << 20


class BackendCapability(enum.Flag):
    """What a memory backend can do natively (not through emulation)."""

    NONE = 0
    LOAD_STORE = enum.auto()     # CPU load/store, no message framing
    RPC_FRAMING = enum.auto()    # ops are framed requests a server handles
    REMOTE_ALLOC = enum.auto()   # the remote side runs the allocator
    ATOMICS = enum.auto()        # remote atomic CAS
    SUB_LINE_TRANSFER = enum.auto()  # wire cost scales below one cache line
    MULTI_TENANT = enum.auto()   # native tenant isolation (shares/quotas)
    KV_NATIVE = enum.auto()      # native key-value interface


class MemoryBackend(abc.ABC):
    """Uniform driver interface over one remote-memory system.

    All five methods are **process-generators** to be driven on the
    backend's environment (``yield from`` inside a process, or via
    :meth:`run_process` from plain code).  Handles returned by
    :meth:`alloc` are opaque integers scoped to this backend instance.

    Subclasses own their simulation environment: a backend is a
    self-contained experiment (environment + node + adapter state), so
    benchmarks can build several side by side and run each to
    completion independently.
    """

    #: registry name, e.g. ``"rdma"``; set by each subclass
    name: str = ""
    #: what the backend does natively
    capabilities: BackendCapability = BackendCapability.NONE

    def __init__(self, params: Optional[ClioParams] = None, seed: int = 0):
        self.params = params or DEFAULT_PARAMS
        self.seed = seed
        self._handles = itertools.count(1)
        self._ready = False

    # -- environment ------------------------------------------------------------------

    @property
    @abc.abstractmethod
    def env(self):
        """The simulation environment this backend schedules into."""

    def run_process(self, generator):
        """Drive one process-generator to completion; return its value."""
        return self.env.run(until=self.env.process(generator))

    # -- protocol ---------------------------------------------------------------------

    @abc.abstractmethod
    def setup(self):
        """Process-generator: one-time connection/registration work."""

    @abc.abstractmethod
    def alloc(self, size: int):
        """Process-generator: allocate ``size`` bytes; returns a handle."""

    @abc.abstractmethod
    def free(self, handle: int):
        """Process-generator: release an allocation."""

    @abc.abstractmethod
    def read(self, handle: int, offset: int, size: int):
        """Process-generator: returns ``(data, latency_ns)``."""

    @abc.abstractmethod
    def write(self, handle: int, offset: int, data: bytes):
        """Process-generator: returns ``latency_ns``."""

    # -- shared plumbing --------------------------------------------------------------

    def _require_setup(self) -> None:
        if not self._ready:
            raise RuntimeError(f"{self.name}: call setup() before use")

    def _check_bounds(self, size: int, offset: int, length: int) -> None:
        if offset < 0 or offset + length > size:
            raise ValueError(
                f"{self.name}: access [{offset}, {offset + length}) outside "
                f"allocation of {size} bytes")


class ClioBackend(MemoryBackend):
    """Clio itself, through a CLib thread on a one-CN/one-MN cluster."""

    name = "clio"
    capabilities = (BackendCapability.RPC_FRAMING
                    | BackendCapability.REMOTE_ALLOC
                    | BackendCapability.SUB_LINE_TRANSFER)

    def __init__(self, params: Optional[ClioParams] = None, seed: int = 0,
                 cluster=None):
        super().__init__(params, seed)
        from repro.cluster import ClioCluster
        capacity = (self.params.backend.dram_capacity
                    or self.params.cboard.dram_capacity)
        self.cluster = cluster or ClioCluster(
            params=self.params, seed=seed, mn_capacity=capacity)
        self._thread = None
        self._sizes: dict[int, int] = {}
        self._vas: dict[int, int] = {}

    @property
    def env(self):
        return self.cluster.env

    def run_process(self, generator):
        return self.cluster.run(until=self.env.process(generator))

    def setup(self):
        self._thread = self.cluster.cn(0).process("mn0").thread()
        self._ready = True
        yield self.env.timeout(0)

    def alloc(self, size: int):
        self._require_setup()
        va = yield from self._thread.ralloc(size)
        handle = next(self._handles)
        self._vas[handle] = va
        self._sizes[handle] = size
        return handle

    def free(self, handle: int):
        self._require_setup()
        yield from self._thread.rfree(self._vas.pop(handle))
        self._sizes.pop(handle)

    def read(self, handle: int, offset: int, size: int):
        self._require_setup()
        self._check_bounds(self._sizes[handle], offset, size)
        start = self.env.now
        data = yield from self._thread.rread(self._vas[handle] + offset, size)
        return data, self.env.now - start

    def write(self, handle: int, offset: int, data: bytes):
        self._require_setup()
        self._check_bounds(self._sizes[handle], offset, len(data))
        start = self.env.now
        yield from self._thread.rwrite(self._vas[handle] + offset, data)
        return self.env.now - start


class RDMABackend(MemoryBackend):
    """One-sided RDMA verbs: alloc registers an MR, read/write are verbs."""

    name = "rdma"
    capabilities = (BackendCapability.ATOMICS
                    | BackendCapability.SUB_LINE_TRANSFER)

    def __init__(self, params: Optional[ClioParams] = None, seed: int = 0):
        super().__init__(params, seed)
        from repro.baselines.rdma import RDMAMemoryNode
        from repro.sim import Environment
        from repro.sim.rng import RandomStream
        self._env = Environment()
        self.node = RDMAMemoryNode(self._env, self.params,
                                   rng=RandomStream(seed, "rdma"))
        self._qp = None
        self._regions: dict[int, object] = {}

    @property
    def env(self):
        return self._env

    def setup(self):
        self._qp = self.node.create_qp()
        self._ready = True
        yield self.env.timeout(0)

    def alloc(self, size: int):
        self._require_setup()
        region = yield from self.node.register_mr(
            size, pinned=self.params.backend.pinned)
        handle = next(self._handles)
        self._regions[handle] = region
        return handle

    def free(self, handle: int):
        self._require_setup()
        yield from self.node.deregister_mr(self._regions.pop(handle))

    def read(self, handle: int, offset: int, size: int):
        self._require_setup()
        region = self._regions[handle]
        data, latency = yield from self.node.read(self._qp, region,
                                                  offset, size)
        return data, latency

    def write(self, handle: int, offset: int, data: bytes):
        self._require_setup()
        region = self._regions[handle]
        latency = yield from self.node.write(self._qp, region, offset, data)
        return latency


class LegoOSBackend(MemoryBackend):
    """LegoOS software VM: alloc maps a VA range at the software MN."""

    name = "legoos"
    capabilities = (BackendCapability.RPC_FRAMING
                    | BackendCapability.REMOTE_ALLOC
                    | BackendCapability.SUB_LINE_TRANSFER)

    _PID = 1

    def __init__(self, params: Optional[ClioParams] = None, seed: int = 0):
        super().__init__(params, seed)
        from repro.baselines.legoos import LegoOSMemoryNode
        from repro.sim import Environment
        from repro.sim.rng import RandomStream
        self._env = Environment()
        self.node = LegoOSMemoryNode(self._env, self.params,
                                     rng=RandomStream(seed, "legoos"))
        self._next_va = 0
        self._ranges: dict[int, tuple[int, int]] = {}

    @property
    def env(self):
        return self._env

    def setup(self):
        self._ready = True
        yield self.env.timeout(0)

    def alloc(self, size: int):
        self._require_setup()
        va = self._next_va
        page = self.node.page_size
        self._next_va += -(-size // page) * page
        self.node.map_range(self._PID, va, size)
        handle = next(self._handles)
        self._ranges[handle] = (va, size)
        yield self.env.timeout(0)
        return handle

    def free(self, handle: int):
        # LegoOS frees through its own manager; the model keeps mappings.
        self._require_setup()
        self._ranges.pop(handle)
        yield self.env.timeout(0)

    def read(self, handle: int, offset: int, size: int):
        self._require_setup()
        va, total = self._ranges[handle]
        self._check_bounds(total, offset, size)
        data, latency = yield from self.node.read(self._PID, va + offset,
                                                  size)
        return data, latency

    def write(self, handle: int, offset: int, data: bytes):
        self._require_setup()
        va, total = self._ranges[handle]
        self._check_bounds(total, offset, len(data))
        latency = yield from self.node.write(self._PID, va + offset, data)
        return latency


class CloverBackend(MemoryBackend):
    """Clover's KV store driven as memory: one key per written range.

    Clover is client-managed passive memory with a native put/get
    interface; the adapter keys versions by ``(handle, offset)`` so a
    read of a range that was written as a unit returns those bytes (out
    of the 1 KB version slot) and a never-written range reads as zeros
    — the same observable semantics as the byte-addressed backends for
    unit-aligned access patterns.
    """

    name = "clover"
    capabilities = (BackendCapability.ATOMICS
                    | BackendCapability.KV_NATIVE)

    def __init__(self, params: Optional[ClioParams] = None, seed: int = 0):
        super().__init__(params, seed)
        from repro.baselines.clover import CloverStore
        from repro.sim import Environment
        from repro.sim.rng import RandomStream
        self._env = Environment()
        self.store = CloverStore(self._env, self.params,
                                 rng=RandomStream(seed, "clover"))
        self._sizes: dict[int, int] = {}

    @property
    def env(self):
        return self._env

    @staticmethod
    def _key(handle: int, offset: int) -> bytes:
        return b"%d:%d" % (handle, offset)

    def setup(self):
        yield from self.store.setup()
        self._ready = True

    def alloc(self, size: int):
        # Passive memory: clients carve the pre-registered region
        # themselves; allocation is pure client-side bookkeeping.
        self._require_setup()
        handle = next(self._handles)
        self._sizes[handle] = size
        yield self.env.timeout(0)
        return handle

    def free(self, handle: int):
        self._require_setup()
        self._sizes.pop(handle)
        yield self.env.timeout(0)

    def read(self, handle: int, offset: int, size: int):
        self._require_setup()
        self._check_bounds(self._sizes[handle], offset, size)
        value, latency = yield from self.store.get(self._key(handle, offset))
        if value is None:
            return bytes(size), latency
        data = bytes(value[:size])
        if len(data) < size:
            data += bytes(size - len(data))
        return data, latency

    def write(self, handle: int, offset: int, data: bytes):
        self._require_setup()
        self._check_bounds(self._sizes[handle], offset, len(data))
        latency = yield from self.store.put(self._key(handle, offset),
                                            bytes(data))
        return latency


class HERDBackend(MemoryBackend):
    """HERD's raw RPC path over a client-side bump allocator."""

    name = "herd"
    capabilities = (BackendCapability.RPC_FRAMING
                    | BackendCapability.KV_NATIVE
                    | BackendCapability.SUB_LINE_TRANSFER)

    on_bluefield = False

    def __init__(self, params: Optional[ClioParams] = None, seed: int = 0):
        super().__init__(params, seed)
        from repro.baselines.herd import HERDServer
        from repro.sim import Environment
        from repro.sim.rng import RandomStream
        self._env = Environment()
        self.server = HERDServer(self._env, self.params,
                                 on_bluefield=self.on_bluefield,
                                 rng=RandomStream(seed, "herd"))
        self._next_base = 0
        self._ranges: dict[int, tuple[int, int]] = {}

    @property
    def env(self):
        return self._env

    def setup(self):
        self._ready = True
        yield self.env.timeout(0)

    def alloc(self, size: int):
        self._require_setup()
        if self._next_base + size > self.server.dram.capacity:
            raise MemoryError(f"{self.name}: store full")
        handle = next(self._handles)
        self._ranges[handle] = (self._next_base, size)
        self._next_base += size
        yield self.env.timeout(0)
        return handle

    def free(self, handle: int):
        self._require_setup()
        self._ranges.pop(handle)
        yield self.env.timeout(0)

    def read(self, handle: int, offset: int, size: int):
        self._require_setup()
        base, total = self._ranges[handle]
        self._check_bounds(total, offset, size)
        data, latency = yield from self.server.raw_read(base + offset, size)
        return data, latency

    def write(self, handle: int, offset: int, data: bytes):
        self._require_setup()
        base, total = self._ranges[handle]
        self._check_bounds(total, offset, len(data))
        latency = yield from self.server.raw_write(base + offset, data)
        return latency


class HERDBlueFieldBackend(HERDBackend):
    """HERD with the handler on the BlueField's ARM cores."""

    name = "herd-bf"
    on_bluefield = True


# ---------------------------------------------------------------------------
# Registry + factory
# ---------------------------------------------------------------------------


def _cxl_backend():
    from repro.baselines.cxl import CXLBackend
    return CXLBackend


#: name -> class (CXL resolved lazily to keep import edges one-way)
BACKENDS: dict[str, type] = {
    "clio": ClioBackend,
    "rdma": RDMABackend,
    "legoos": LegoOSBackend,
    "clover": CloverBackend,
    "herd": HERDBackend,
    "herd-bf": HERDBlueFieldBackend,
}

BACKEND_NAMES = ("clio", "cxl", "rdma", "legoos", "clover", "herd",
                 "herd-bf")


def create_backend(name: str, params: Optional[ClioParams] = None,
                   seed: int = 0) -> MemoryBackend:
    """Build a ready-to-setup backend by registry name.

    ``params.backend`` supplies the setup knobs (capacity, pinning, slot
    counts, HERD cores, CXL tenant); ``params.backend.name`` is *not*
    consulted here — the caller says which backend it wants, so one
    params bundle can drive a whole comparison sweep.
    """
    if name == "cxl":
        cls = _cxl_backend()
    else:
        cls = BACKENDS.get(name)
    if cls is None:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {BACKEND_NAMES}")
    return cls(params=params, seed=seed)


def warn_direct_kwarg(cls_name: str, kwarg: str) -> None:
    """Deprecation shim for per-backend constructor setup kwargs."""
    warnings.warn(
        f"{cls_name}({kwarg}=...) is deprecated; set "
        f"ClioParams.backend.{kwarg} (repro.params.BackendParams) and use "
        "repro.baselines.create_backend() instead",
        DeprecationWarning, stacklevel=3)

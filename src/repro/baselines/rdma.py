"""Native one-sided RDMA baseline (paper section 2.2, Figures 4-7, 10-12).

The model captures the mechanisms behind every RDMA limitation the paper
measures:

* **QP scalability** (Figure 4): per-connection state is cached on-chip;
  beyond ``qp_cache_entries`` active QPs, each op pays a PCIe round trip
  to fetch QP state from host memory.
* **PTE/MR scalability** (Figure 5): the NIC caches MTT entries and MR
  metadata; working sets beyond the cache degrade ~4x (the paper's cited
  measurement), and registration fails outright past 2^18 MRs.
* **Latency variation** (Figure 6): an ODP (on-demand paging) access that
  faults traps into the host OS — 16.8 ms, about 14100x a hit.
* **Registration cost** (Figure 12): base verbs cost plus per-4KB-page
  pinning.

Latency jitter follows a light base distribution with a rare heavy tail
(host/NIC queueing), giving RDMA its long CDF tail in Figure 7.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from repro.core.memory import DRAM
from repro.params import ClioParams, SEC
from repro.sim import Environment, Resource
from repro.sim.rng import RandomStream


class MRRegistrationError(Exception):
    """The RNIC cannot register more memory regions."""


class _LRUCache:
    """Fixed-capacity LRU key cache; access() reports hit/miss."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._keys: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, key) -> bool:
        if key in self._keys:
            self._keys.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        self._keys[key] = None
        if len(self._keys) > self.capacity:
            self._keys.popitem(last=False)
        return False

    def invalidate(self, key) -> None:
        self._keys.pop(key, None)


@dataclass
class MemoryRegion:
    """A registered MR: the RDMA protection domain unit."""

    mr_id: int
    base_pa: int
    size: int
    pinned: bool            # pinned at registration vs ODP
    touched_pages: set = field(default_factory=set)


@dataclass
class QueuePair:
    qp_id: int


class RDMAMemoryNode:
    """A host server exposing memory via one-sided RDMA verbs."""

    _mr_ids = itertools.count(1)
    _qp_ids = itertools.count(1)

    def __init__(self, env: Environment, params: ClioParams,
                 rng: Optional[RandomStream] = None,
                 dram_capacity: Optional[int] = None):
        if dram_capacity is not None:
            from repro.baselines.api import warn_direct_kwarg
            warn_direct_kwarg("RDMAMemoryNode", "dram_capacity")
        self.env = env
        self.params = params
        self.rdma = params.rdma
        self.rng = rng or RandomStream(0, "rdma")
        capacity = (dram_capacity or params.backend.dram_capacity
                    or params.cboard.dram_capacity)
        self.dram = DRAM(capacity, access_ns=100,
                         bandwidth_bps=params.cboard.dram_bandwidth_bps)
        self.qp_cache = _LRUCache(self.rdma.qp_cache_entries)
        self.pte_cache = _LRUCache(self.rdma.pte_cache_entries)
        self.mr_cache = _LRUCache(self.rdma.mr_cache_entries)
        self._mrs: dict[int, MemoryRegion] = {}
        # MR registration runs through the host kernel (pin_user_pages
        # under mmap_sem) — concurrent registrations serialize.
        self._registration_lock = Resource(env, capacity=1)
        self._next_pa = 0
        self.ops = 0
        self.page_faults = 0
        # Energy accounting: host CPU cycles burned serving the MN side.
        self.mn_cpu_busy_ns = 0

    # -- connection setup ---------------------------------------------------------

    def create_qp(self) -> QueuePair:
        """Connect one client process (reliable connection QP)."""
        return QueuePair(qp_id=next(self._qp_ids))

    # -- memory registration ---------------------------------------------------------

    def register_mr(self, size: int, pinned: bool = True):
        """Process-generator: register (and optionally pin) a region.

        Cost: verbs base + per-4KB-page pinning when ``pinned``; ODP
        registration skips the pinning but pays faults on first touch.
        """
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        if len(self._mrs) >= self.rdma.max_mrs:
            raise MRRegistrationError(
                f"RNIC cannot register more than {self.rdma.max_mrs} MRs")
        pages = -(-size // self.rdma.host_page_size)
        cost = self.rdma.mr_register_base_ns
        if pinned:
            cost += pages * self.rdma.mr_register_per_page_ns
        token = self._registration_lock.request()
        yield token
        try:
            yield self.env.timeout(cost)
        finally:
            self._registration_lock.release(token)
        self.mn_cpu_busy_ns += cost
        if self._next_pa + size > self.dram.capacity:
            # Wrap: benchmarks map many MRs over the same physical memory
            # (the paper does the same to scale the MR count on 2 GB).
            self._next_pa = 0
        region = MemoryRegion(mr_id=next(self._mr_ids), base_pa=self._next_pa,
                              size=size, pinned=pinned)
        self._next_pa += size
        self._mrs[region.mr_id] = region
        return region

    def deregister_mr(self, region: MemoryRegion):
        yield self.env.timeout(self.rdma.mr_register_base_ns // 2)
        self._mrs.pop(region.mr_id, None)
        self.mr_cache.invalidate(region.mr_id)

    # -- one-sided verbs ----------------------------------------------------------------

    def _metadata_penalty_ns(self, qp: QueuePair, region: MemoryRegion,
                             offset: int, size: int) -> int:
        """On-chip cache lookups for QP, MR, and MTT entries."""
        penalty = 0
        if not self.qp_cache.access(qp.qp_id):
            # QP context (~375B) spans multiple lines: two PCIe fetches.
            penalty += 2 * self.rdma.pcie_miss_penalty_ns
        if not self.mr_cache.access(region.mr_id):
            penalty += self.rdma.pcie_miss_penalty_ns
        page_size = self.rdma.host_page_size
        first = offset // page_size
        last = (offset + size - 1) // page_size
        for page in range(first, last + 1):
            if not self.pte_cache.access((region.mr_id, page)):
                penalty += self.rdma.pcie_miss_penalty_ns
        return penalty

    def _fault_penalty_ns(self, region: MemoryRegion, offset: int,
                          size: int) -> int:
        """ODP first-touch faults trap into the host OS (16.8 ms)."""
        if region.pinned:
            return 0
        page_size = self.rdma.host_page_size
        first = offset // page_size
        last = (offset + size - 1) // page_size
        penalty = 0
        for page in range(first, last + 1):
            if page not in region.touched_pages:
                region.touched_pages.add(page)
                self.page_faults += 1
                penalty += self.rdma.odp_page_fault_ns
        return penalty

    def _tail_jitter_ns(self) -> int:
        """Light jitter plus a rare heavy tail (Figure 7's long RDMA tail)."""
        jitter = self.rng.uniform_int(0, 300)
        roll = self.rng.uniform()
        if roll < 0.0005:
            jitter += self.rng.uniform_int(200_000, 4_000_000)  # 0.2-4 ms spike
        elif roll < 0.02:
            jitter += self.rng.uniform_int(10_000, 60_000)      # 10-60 us
        return jitter

    def _serialization_ns(self, size: int) -> int:
        rate = min(self.params.network.cn_nic_rate_bps,
                   self.params.network.switch_rate_bps)
        return (size * 8 * SEC) // rate

    def _verb(self, base_ns: int, qp: QueuePair, region: MemoryRegion,
              offset: int, size: int):
        if offset < 0 or offset + size > region.size:
            raise ValueError(
                f"access [{offset}, {offset + size}) outside MR of {region.size}")
        self.ops += 1
        latency = (base_ns
                   + self._serialization_ns(size)
                   + self._metadata_penalty_ns(qp, region, offset, size)
                   + self._fault_penalty_ns(region, offset, size)
                   + self._tail_jitter_ns())
        yield self.env.timeout(latency)
        return latency

    def read(self, qp: QueuePair, region: MemoryRegion, offset: int,
             size: int):
        """Process-generator: one-sided READ; returns (data, latency_ns)."""
        latency = yield from self._verb(self.rdma.base_read_rtt_ns, qp,
                                        region, offset, size)
        data = self.dram.read(region.base_pa + offset, size)
        return data, latency

    def write(self, qp: QueuePair, region: MemoryRegion, offset: int,
              data: bytes):
        """Process-generator: one-sided WRITE; returns latency_ns."""
        latency = yield from self._verb(self.rdma.base_write_rtt_ns, qp,
                                        region, offset, len(data))
        self.dram.write(region.base_pa + offset, data)
        return latency

    def atomic_cas(self, qp: QueuePair, region: MemoryRegion, offset: int,
                   expected: int, value: int):
        """Process-generator: 8-byte CAS; returns (old, success, latency)."""
        latency = yield from self._verb(self.rdma.base_read_rtt_ns, qp,
                                        region, offset, 8)
        old = int.from_bytes(self.dram.read(region.base_pa + offset, 8),
                             "little")
        success = old == expected
        if success:
            self.dram.write(region.base_pa + offset,
                            value.to_bytes(8, "little"))
        return old, success, latency

"""Clover adapted as passive disaggregated memory (paper sections 2.3, 7).

The MN is raw memory with zero processing; all management runs at the
clients.  Consequences the model reproduces:

* writes take at least **two RTTs** (out-of-place write, then metadata
  pointer update via CAS) to deliver consistency without MN processing;
* reads take one RTT, plus an occasional extra chase when the metadata
  cursor is stale under contention;
* the CN burns extra cycles on space management — which is why Clover's
  *energy* lands slightly above Clio's despite the passive MN (Figure 18).
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.rdma import RDMAMemoryNode
from repro.params import ClioParams
from repro.sim import Environment
from repro.sim.rng import RandomStream


class CloverStore:
    """Client-managed key-value store on a passive MN (over RDMA)."""

    VALUE_SLOT = 1 << 10   # fixed slot per version (1 KB values in YCSB)

    def __init__(self, env: Environment, params: ClioParams,
                 rng: Optional[RandomStream] = None,
                 dram_capacity: Optional[int] = None):
        if dram_capacity is not None:
            from repro.baselines.api import warn_direct_kwarg
            warn_direct_kwarg("CloverStore", "dram_capacity")
        self.env = env
        self.params = params
        self.clover = params.clover
        self.rng = rng or RandomStream(0, "clover")
        # The substrate is plain RDMA to raw memory.  The capacity was
        # already resolved against BackendParams here, so silence the
        # inner constructor's deprecation shim.
        import warnings as _warnings
        with _warnings.catch_warnings():
            _warnings.simplefilter("ignore", DeprecationWarning)
            self.rdma_node = RDMAMemoryNode(
                env, params,
                rng=(rng or RandomStream(0, "clover")).fork("rdma"),
                dram_capacity=dram_capacity)
        self._setup_done = False
        self._qp = None
        self._region = None
        # Client-side metadata: key -> slot index of the newest version.
        self._index: dict[bytes, int] = {}
        self._next_slot = 0
        self.gets = 0
        self.puts = 0
        self.extra_chases = 0
        # Energy accounting: CN-side management cycles.
        self.cn_mgmt_busy_ns = 0

    def setup(self, capacity_slots: Optional[int] = None):
        """Process-generator: register the backing region (pinned — PDM
        systems require physical pinning, one of the paper's criticisms).

        The slot count comes from ``ClioParams.backend.capacity_slots``;
        passing it here directly is deprecated.
        """
        if capacity_slots is not None:
            from repro.baselines.api import warn_direct_kwarg
            warn_direct_kwarg("CloverStore.setup", "capacity_slots")
        slots = capacity_slots or self.params.backend.capacity_slots
        self._qp = self.rdma_node.create_qp()
        self._region = yield from self.rdma_node.register_mr(
            slots * self.VALUE_SLOT, pinned=True)
        self._setup_done = True

    def _management_ns(self) -> int:
        cost = self.clover.metadata_lookup_ns
        self.cn_mgmt_busy_ns += cost
        return cost

    def put(self, key: bytes, value: bytes):
        """Process-generator: out-of-place write + CAS pointer flip (2 RTTs).

        Returns latency_ns.
        """
        if not self._setup_done:
            raise RuntimeError("call setup() first")
        if len(value) > self.VALUE_SLOT:
            raise ValueError(f"value exceeds slot size {self.VALUE_SLOT}")
        start = self.env.now
        self.puts += 1
        yield self.env.timeout(self._management_ns())
        slot = self._next_slot
        self._next_slot = (self._next_slot + 1) % (
            self._region.size // self.VALUE_SLOT)
        # RTT 1: write the new version out of place.
        yield from self.rdma_node.write(self._qp, self._region,
                                        slot * self.VALUE_SLOT, value)
        # RTT 2 (+ more under contention): CAS the metadata pointer.
        extra_rtts = self.clover.write_round_trips - 2
        if self.rng.chance(self.clover.cursor_chase_probability):
            extra_rtts += 1
            self.extra_chases += 1
        for _ in range(1 + max(0, extra_rtts)):
            yield from self.rdma_node.atomic_cas(
                self._qp, self._region, slot * self.VALUE_SLOT, 0, 1)
        self._index[bytes(key)] = slot
        return self.env.now - start

    def get(self, key: bytes):
        """Process-generator: 1 RTT read (plus occasional stale chase).

        Returns (value, latency_ns); value is None for a missing key.
        """
        if not self._setup_done:
            raise RuntimeError("call setup() first")
        start = self.env.now
        self.gets += 1
        yield self.env.timeout(self._management_ns())
        slot = self._index.get(bytes(key))
        if slot is None:
            return None, self.env.now - start
        if self.rng.chance(self.clover.cursor_chase_probability):
            # Stale cursor: one extra chase read.
            self.extra_chases += 1
            yield from self.rdma_node.read(self._qp, self._region,
                                           slot * self.VALUE_SLOT, 8)
        data, _ = yield from self.rdma_node.read(
            self._qp, self._region, slot * self.VALUE_SLOT, self.VALUE_SLOT)
        return data, self.env.now - start

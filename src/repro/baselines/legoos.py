"""LegoOS-style software memory node (paper section 2.2, Figures 10-11).

LegoOS emulates the MN with a regular server: a thread pool receives
requests over RDMA and does address translation + permission checking in
software (hash-table lookup).  That software step is the bottleneck the
paper measures — roughly 2x Clio's latency at small sizes and a 77 Gbps
goodput ceiling versus Clio's 110+.
"""

from __future__ import annotations

from typing import Optional

from repro.core.memory import DRAM
from repro.params import ClioParams, SEC
from repro.sim import Environment, Resource
from repro.sim.rng import RandomStream


class LegoOSMemoryNode:
    """Software virtual-memory MN over an RDMA-like network."""

    def __init__(self, env: Environment, params: ClioParams,
                 rng: Optional[RandomStream] = None,
                 dram_capacity: Optional[int] = None):
        if dram_capacity is not None:
            from repro.baselines.api import warn_direct_kwarg
            warn_direct_kwarg("LegoOSMemoryNode", "dram_capacity")
        self.env = env
        self.params = params
        self.lego = params.legoos
        self.rng = rng or RandomStream(0, "legoos")
        capacity = (dram_capacity or params.backend.dram_capacity
                    or params.cboard.dram_capacity)
        self.dram = DRAM(capacity, access_ns=100,
                         bandwidth_bps=params.cboard.dram_bandwidth_bps)
        self._threads = Resource(env, capacity=self.lego.thread_pool_size)
        self._vm: dict[tuple[int, int], int] = {}   # (pid, vpn) -> ppn
        self._next_ppn = 0
        self.page_size = 4 << 10
        self.ops = 0
        self.mn_cpu_busy_ns = 0

    # -- software virtual memory ------------------------------------------------------

    def map_range(self, pid: int, va: int, size: int) -> None:
        """Pre-map a VA range (LegoOS allocates through its own manager)."""
        first = va // self.page_size
        last = (va + size - 1) // self.page_size
        for vpn in range(first, last + 1):
            if (pid, vpn) not in self._vm:
                self._vm[(pid, vpn)] = self._next_ppn
                self._next_ppn += 1

    def _translate(self, pid: int, va: int) -> int:
        vpn = va // self.page_size
        ppn = self._vm.get((pid, vpn))
        if ppn is None:
            raise KeyError(f"pid={pid} va={va:#x} unmapped")
        return ppn * self.page_size + (va % self.page_size)

    # -- timing -----------------------------------------------------------------------

    def _wire_ns(self, size: int) -> int:
        """Network round trip (RDMA wire) capped at LegoOS's goodput."""
        rate = min(self.params.network.cn_nic_rate_bps,
                   self.lego.peak_goodput_bps)
        base = self.params.rdma.base_read_rtt_ns
        return base + (size * 8 * SEC) // rate

    def _software_ns(self) -> int:
        # Hash lookup + permission check + dispatch, with scheduler jitter.
        return self.lego.software_handling_ns + self.rng.uniform_int(0, 400)

    def _serve(self, size: int):
        """Common path: thread pool admission + software handling."""
        slot = self._threads.request()
        yield slot
        try:
            handling = self._software_ns()
            self.mn_cpu_busy_ns += handling
            yield self.env.timeout(handling)
        finally:
            self._threads.release(slot)
        yield self.env.timeout(self._wire_ns(size))

    # -- data path ------------------------------------------------------------------

    def read(self, pid: int, va: int, size: int):
        """Process-generator: remote read; returns (data, latency_ns)."""
        start = self.env.now
        self.ops += 1
        yield from self._serve(size)
        pa = self._translate(pid, va)
        data = self.dram.read(pa, size)
        return data, self.env.now - start

    def write(self, pid: int, va: int, data: bytes):
        """Process-generator: remote write; returns latency_ns."""
        start = self.env.now
        self.ops += 1
        yield from self._serve(len(data))
        pa = self._translate(pid, va)
        self.dram.write(pa, data)
        return self.env.now - start

"""HERD RPC key-value baseline (paper section 7, Figures 10-11, 17-18).

HERD serves a key-value interface with an RPC architecture: the client
writes its request into server memory, a server CPU core polls, executes
the operation, and replies.  Two deployments:

* **CPU**: the handler runs on the host Xeon — fast per-op handling, but
  every op burns host CPU (the energy cost Figure 18 shows);
* **BlueField (HERD-BF)**: the handler runs on the SmartNIC's ARM cores —
  each op crosses between the ConnectX chip and the ARM chip, which is
  what makes HERD-BF's latency *worse* than host-CPU HERD.
"""

from __future__ import annotations

from typing import Optional

from repro.core.memory import DRAM
from repro.params import ClioParams, SEC
from repro.sim import Environment, Resource
from repro.sim.rng import RandomStream


class HERDServer:
    """An RPC KV server over RDMA, on a host CPU or a BlueField."""

    VALUE_SLOT = 1 << 10

    def __init__(self, env: Environment, params: ClioParams,
                 on_bluefield: bool = False,
                 rng: Optional[RandomStream] = None,
                 dram_capacity: Optional[int] = None,
                 server_cores: Optional[int] = None):
        from repro.baselines.api import warn_direct_kwarg
        if dram_capacity is not None:
            warn_direct_kwarg("HERDServer", "dram_capacity")
        if server_cores is not None:
            warn_direct_kwarg("HERDServer", "server_cores")
        self.env = env
        self.params = params
        self.herd = params.herd
        self.on_bluefield = on_bluefield
        self.rng = rng or RandomStream(0, "herd")
        capacity = (dram_capacity or params.backend.dram_capacity
                    or params.cboard.dram_capacity)
        self.dram = DRAM(capacity, access_ns=100,
                         bandwidth_bps=params.cboard.dram_bandwidth_bps)
        self._cores = Resource(env, capacity=server_cores
                               or params.backend.server_cores
                               or params.herd.server_cores)
        self._index: dict[bytes, int] = {}
        self._next_slot = 0
        self.gets = 0
        self.puts = 0
        self.mn_cpu_busy_ns = 0       # host CPU (or ARM) time serving RPCs

    # -- timing -------------------------------------------------------------------------

    def _wire_ns(self, payload: int) -> int:
        rate = min(self.params.network.cn_nic_rate_bps,
                   self.params.network.switch_rate_bps)
        # Request write + response write: a full round trip + payload.
        return (self.params.rdma.base_read_rtt_ns
                + (payload * 8 * SEC) // rate)

    def _handling_ns(self, payload: int) -> int:
        """Per-op server time: dispatch + KV work + request/response copies."""
        if self.on_bluefield:
            # NIC chip -> ARM chip -> NIC chip, plus slower cores.
            return (2 * self.herd.bluefield_crossing_ns
                    + self.herd.bluefield_handling_ns
                    + int(payload * self.herd.bluefield_per_byte_ns)
                    + self.rng.uniform_int(0, 300))
        return (self.herd.cpu_handling_ns
                + int(payload * self.herd.cpu_per_byte_ns)
                + self.rng.uniform_int(0, 150))

    def _rpc(self, payload: int):
        core = self._cores.request()
        yield core
        try:
            handling = self._handling_ns(payload)
            self.mn_cpu_busy_ns += handling
            yield self.env.timeout(handling)
        finally:
            self._cores.release(core)
        yield self.env.timeout(self._wire_ns(payload))

    # -- KV interface ---------------------------------------------------------------------

    def put(self, key: bytes, value: bytes):
        """Process-generator: RPC set; returns latency_ns."""
        if len(value) > self.VALUE_SLOT:
            raise ValueError(f"value exceeds slot size {self.VALUE_SLOT}")
        start = self.env.now
        self.puts += 1
        yield from self._rpc(len(value))
        key = bytes(key)
        slot = self._index.get(key)
        if slot is None:
            slot = self._next_slot
            self._next_slot += 1
            if (slot + 1) * self.VALUE_SLOT > self.dram.capacity:
                raise MemoryError("HERD store full")
            self._index[key] = slot
        self.dram.write(slot * self.VALUE_SLOT, value)
        return self.env.now - start

    def get(self, key: bytes):
        """Process-generator: RPC get; returns (value, latency_ns)."""
        start = self.env.now
        self.gets += 1
        slot = self._index.get(bytes(key))
        payload = self.VALUE_SLOT if slot is not None else 0
        yield from self._rpc(payload)
        if slot is None:
            return None, self.env.now - start
        data = self.dram.read(slot * self.VALUE_SLOT, self.VALUE_SLOT)
        return data, self.env.now - start

    # -- raw read/write for the latency-comparison figures ------------------------------------

    def raw_read(self, offset: int, size: int):
        """Process-generator: RPC read of raw bytes; returns (data, ns)."""
        start = self.env.now
        yield from self._rpc(size)
        return self.dram.read(offset, size), self.env.now - start

    def raw_write(self, offset: int, data: bytes):
        """Process-generator: RPC write of raw bytes; returns latency_ns."""
        start = self.env.now
        yield from self._rpc(len(data))
        self.dram.write(offset, data)
        return self.env.now - start

"""CXL 2.0-style pooled load/store memory (the third paradigm).

Clio's evaluation compares RPC-style hardware disaggregation against
RDMA and software MNs; the comparison ROADMAP names as the open item is
cache-line-granularity **load/store** pooling — what a CXL 2.0 switch
with multi-headed devices provides.  This module models that paradigm
with the same philosophy as the other baselines: a timing model
calibrated to published measurements (CXL-DMSim's ~350-400 ns far loads,
emucxl's NUMA-emulation band), not a packet-level simulation.

What the model keeps, because the comparison turns on it:

* **No RPC framing.** A load/store pays HDM decode + switch hop + device
  access.  There is no doorbell, no header amortization, no congestion
  window: a 64 B access costs ~470 ns where Clio's RPC path costs ~2.3 us
  — CXL wins all sub-line traffic.
* **Line granularity.** Every access moves whole 64 B lines.  Bulk moves
  pipeline extra lines at ``line_pipeline_ns`` but still pay per-line
  port occupancy, so large transfers lose to Clio's streamed RPC frames.
* **Coherence is not free.** With ``coherence=True`` (the pooled,
  multi-host configuration) a directory tracks which host holds each
  line.  Touching a line another host wrote costs a back-invalidation
  (recall the dirty copy); touching a clean remote line on a store costs
  a snoop.  Write-heavy sharing ping-pongs lines and erases the latency
  advantage — the churn benchmark pins this directionally.
* **Pooling needs QoS.** The pool is multi-tenant: per-tenant capacity
  quotas (:class:`CXLQuotaExceeded` on breach) and per-tenant bandwidth
  reservations at the pool port.  Shaping off shares one port serializer
  (one tenant's burst queues everyone); shaping on gives each tenant a
  private serializer at ``share x port_rate`` — congestion isolation by
  construction, at the cost of work conservation.

Determinism: the model is pure integer arithmetic over seeded state (no
RNG at all), so same-seed runs are bit-identical and the conformance
suite pins exact latency fingerprints.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.baselines.api import BackendCapability, MemoryBackend
from repro.core.memory import DRAM
from repro.params import ClioParams, SEC, TenantConfig
from repro.sim import Environment


class CXLError(Exception):
    """Base error of the CXL pool model."""


class CXLQuotaExceeded(CXLError):
    """A tenant asked for capacity beyond its quota."""


class CXLAccessError(CXLError):
    """An access fell outside the host's HDM-decoded ranges."""


@dataclass
class HDMRegion:
    """One HDM-decoder entry: a host-visible window onto device memory."""

    region_id: int
    host: str
    tenant: str
    base_pa: int          # device physical address
    size: int


class CXLHost:
    """One host attached to the pool: the load/store issue side.

    A host belongs to one tenant.  All methods are process-generators on
    the pool's environment.
    """

    def __init__(self, pool: "CXLPool", name: str, tenant: str):
        self.pool = pool
        self.name = name
        self.tenant = tenant
        self.loads = 0
        self.stores = 0

    def alloc(self, size: int):
        """Process-generator: program an HDM window; returns the region."""
        region = yield from self.pool._alloc(self, size)
        return region

    def free(self, region: HDMRegion):
        yield from self.pool._free(self, region)

    def load(self, region: HDMRegion, offset: int, size: int):
        """Process-generator: line-granular load; returns (data, ns)."""
        self.loads += 1
        result = yield from self.pool._access(self, region, offset, size,
                                              store=False, data=None)
        return result

    def store(self, region: HDMRegion, offset: int, data: bytes):
        """Process-generator: line-granular store; returns latency_ns."""
        self.stores += 1
        _, latency = yield from self.pool._access(self, region, offset,
                                                  len(data), store=True,
                                                  data=data)
        return latency


class CXLPool:
    """The pooled device + fabric: capacity, coherence, port, tenants."""

    def __init__(self, env: Environment, params: ClioParams,
                 capacity: Optional[int] = None, registry=None,
                 scope: str = "cxl"):
        self.env = env
        self.params = params
        self.cxl = params.cxl
        capacity = (capacity or params.backend.dram_capacity
                    or params.cboard.dram_capacity)
        self.dram = DRAM(capacity, access_ns=100,
                         bandwidth_bps=params.cboard.dram_bandwidth_bps)
        self._region_ids = itertools.count(1)
        self._next_pa = 0
        self._free_ranges: list[tuple[int, int]] = []   # (base, size)
        self._regions: dict[int, HDMRegion] = {}
        # Coherence directory: line index -> (owner host, dirty).
        self._directory: dict[int, tuple[str, bool]] = {}
        # Port serializers (absolute ns timestamps).
        self._port_free_at = 0
        self._tenant_free_at: dict[str, int] = {}
        self.shaping = False
        # Tenancy: quotas/shares from params.qos; hosts default to the
        # catch-all tenant with full share and no quota.
        self._tenants: dict[str, TenantConfig] = {
            tenant.name: tenant for tenant in params.qos.tenants}
        self._usage: dict[str, int] = {}
        self._hosts: dict[str, CXLHost] = {}
        # Counters (also exported through the metrics registry).
        self.loads = 0
        self.stores = 0
        self.lines_moved = 0
        self.snoops = 0
        self.back_invalidations = 0
        self.port_wait_ns = 0
        self._tenant_bytes: dict[str, int] = {}
        self._tenant_wait_ns: dict[str, int] = {}
        if registry is not None:
            self._register_metrics(registry, scope)

    # -- wiring ---------------------------------------------------------------------

    def _register_metrics(self, registry, scope: str) -> None:
        pool = registry.scope(f"{scope}.pool")
        pool.counter("loads", "line-granular loads served", fn=lambda: self.loads)
        pool.counter("stores", "line-granular stores served",
                     fn=lambda: self.stores)
        pool.counter("lines_moved", "64B lines moved over the port",
                     fn=lambda: self.lines_moved)
        pool.counter("snoops", "clean remote copies probed",
                     fn=lambda: self.snoops)
        pool.counter("back_invalidations", "dirty remote lines recalled",
                     fn=lambda: self.back_invalidations)
        pool.counter("port_wait_ns", "total wait for the pool port",
                     unit="ns", fn=lambda: self.port_wait_ns)
        pool.gauge("used_bytes", "allocated device capacity",
                   unit="bytes", fn=lambda: sum(self._usage.values()))
        for name in self._tenants:
            tenant_scope = registry.scope(f"{scope}.tenant.{name}")
            tenant_scope.counter(
                "bytes_moved", "payload bytes moved for this tenant",
                unit="bytes",
                fn=lambda name=name: self._tenant_bytes.get(name, 0))
            tenant_scope.counter(
                "port_wait_ns", "port wait attributed to this tenant",
                unit="ns",
                fn=lambda name=name: self._tenant_wait_ns.get(name, 0))
            tenant_scope.gauge(
                "used_bytes", "capacity allocated to this tenant",
                unit="bytes",
                fn=lambda name=name: self._usage.get(name, 0))

    def host(self, name: str, tenant: str = "default") -> CXLHost:
        """Attach (or look up) a host under ``tenant``."""
        existing = self._hosts.get(name)
        if existing is not None:
            if existing.tenant != tenant:
                raise CXLError(
                    f"host {name!r} already attached as tenant "
                    f"{existing.tenant!r}")
            return existing
        host = CXLHost(self, name, tenant)
        self._hosts[name] = host
        return host

    def enable_shaping(self) -> None:
        """Give each tenant a private serializer at its reserved rate."""
        self.shaping = True

    def disable_shaping(self) -> None:
        self.shaping = False

    def tenant_usage(self, tenant: str) -> int:
        return self._usage.get(tenant, 0)

    # -- capacity -------------------------------------------------------------------

    def _quota_of(self, tenant: str) -> Optional[int]:
        config = self._tenants.get(tenant)
        return config.quota_bytes if config is not None else None

    def _share_of(self, tenant: str) -> float:
        config = self._tenants.get(tenant)
        return config.share if config is not None else 1.0

    def _carve(self, size: int) -> int:
        for index, (base, range_size) in enumerate(self._free_ranges):
            if range_size >= size:
                if range_size == size:
                    self._free_ranges.pop(index)
                else:
                    self._free_ranges[index] = (base + size,
                                                range_size - size)
                return base
        if self._next_pa + size > self.dram.capacity:
            raise CXLError(
                f"pool exhausted: {size} bytes requested, "
                f"{self.dram.capacity - self._next_pa} contiguous left")
        base = self._next_pa
        self._next_pa += size
        return base

    def _alloc(self, host: CXLHost, size: int):
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        # Round to whole lines: the HDM decoder maps line-aligned windows.
        line = self.cxl.line_bytes
        size = -(-size // line) * line
        quota = self._quota_of(host.tenant)
        used = self._usage.get(host.tenant, 0)
        if quota is not None and used + size > quota:
            raise CXLQuotaExceeded(
                f"tenant {host.tenant!r}: {used + size} bytes would exceed "
                f"quota of {quota}")
        base = self._carve(size)
        self._usage[host.tenant] = used + size
        # Programming an HDM decoder entry is a slow config-space write.
        yield self.env.timeout(self.cxl.hdm_program_ns)
        region = HDMRegion(region_id=next(self._region_ids), host=host.name,
                           tenant=host.tenant, base_pa=base, size=size)
        self._regions[region.region_id] = region
        return region

    def _free(self, host: CXLHost, region: HDMRegion):
        if self._regions.pop(region.region_id, None) is None:
            raise CXLError(f"region {region.region_id} not allocated")
        self._usage[region.tenant] = max(
            0, self._usage.get(region.tenant, 0) - region.size)
        self._free_ranges.append((region.base_pa, region.size))
        line = self.cxl.line_bytes
        first = region.base_pa // line
        last = (region.base_pa + region.size - 1) // line
        for index in range(first, last + 1):
            self._directory.pop(index, None)
        yield self.env.timeout(self.cxl.hdm_program_ns)

    # -- the load/store path ----------------------------------------------------------

    def _line_wire_ns(self, tenant: str) -> int:
        rate = self.cxl.port_rate_bps
        if self.shaping:
            rate = max(1, int(rate * self._share_of(tenant)))
        return max(1, (self.cxl.line_bytes * 8 * SEC) // rate)

    def _coherence_ns(self, host: CXLHost, first: int, last: int,
                      store: bool) -> int:
        """Directory cost of touching lines [first, last] from ``host``."""
        if not self.cxl.coherence:
            return 0
        recalls = 0
        snoops = 0
        for index in range(first, last + 1):
            entry = self._directory.get(index)
            if entry is not None:
                owner, dirty = entry
                if owner != host.name:
                    if dirty:
                        recalls += 1
                    elif store:
                        # A store must invalidate clean remote copies too.
                        snoops += 1
            if store:
                self._directory[index] = (host.name, True)
            elif entry is None or entry[0] != host.name:
                self._directory[index] = (host.name, False)
        cost = 0
        if recalls:
            self.back_invalidations += recalls
            cost += (self.cxl.back_invalidate_ns
                     + (recalls - 1) * self.cxl.back_invalidate_pipelined_ns)
        if snoops:
            self.snoops += snoops
            cost += self.cxl.snoop_ns
        return cost

    def _access(self, host: CXLHost, region: HDMRegion, offset: int,
                size: int, store: bool, data: Optional[bytes]):
        if region.region_id not in self._regions:
            raise CXLAccessError(
                f"region {region.region_id} is not mapped (freed?)")
        if offset < 0 or offset + size > region.size:
            raise CXLAccessError(
                f"access [{offset}, {offset + size}) outside HDM window "
                f"of {region.size} bytes")
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        line = self.cxl.line_bytes
        pa = region.base_pa + offset
        first = pa // line
        last = (pa + size - 1) // line
        lines = last - first + 1

        # Device + fabric latency: decode, hop, first-line access, then
        # pipelined extra lines.
        base = (self.cxl.hdm_decode_ns + self.cxl.switch_hop_ns
                + (self.cxl.store_ns if store else self.cxl.load_ns)
                + (lines - 1) * self.cxl.line_pipeline_ns)
        base += self._coherence_ns(host, first, last, store)

        # Port occupancy: whole lines serialize onto the pool port (or
        # onto the tenant's reserved slice of it when shaping).
        now = self.env.now
        occupancy = lines * self._line_wire_ns(host.tenant)
        if self.shaping:
            free_at = self._tenant_free_at.get(host.tenant, 0)
            start = max(now, free_at)
            self._tenant_free_at[host.tenant] = start + occupancy
        else:
            start = max(now, self._port_free_at)
            self._port_free_at = start + occupancy
        wait = start - now
        self.port_wait_ns += wait
        self._tenant_wait_ns[host.tenant] = (
            self._tenant_wait_ns.get(host.tenant, 0) + wait)

        latency = base + wait + occupancy
        if store:
            self.stores += 1
        else:
            self.loads += 1
        self.lines_moved += lines
        self._tenant_bytes[host.tenant] = (
            self._tenant_bytes.get(host.tenant, 0) + lines * line)

        yield self.env.timeout(latency)
        if store:
            self.dram.write(pa, data)
            return None, latency
        return self.dram.read(pa, size), latency


class CXLBackend(MemoryBackend):
    """The pool behind the uniform :class:`MemoryBackend` protocol.

    One backend instance is one host on a private pool (the comparison
    configuration).  Pooled multi-host experiments build a
    :class:`CXLPool` directly and attach hosts per tenant.
    """

    name = "cxl"
    capabilities = (BackendCapability.LOAD_STORE
                    | BackendCapability.MULTI_TENANT)

    def __init__(self, params: Optional[ClioParams] = None, seed: int = 0,
                 pool: Optional[CXLPool] = None, host: str = "host0"):
        super().__init__(params, seed)
        self._env = pool.env if pool is not None else Environment()
        self.pool = pool or CXLPool(self._env, self.params)
        self._host = self.pool.host(host, tenant=self.params.backend.tenant)
        self._regions: dict[int, HDMRegion] = {}

    @property
    def env(self):
        return self._env

    def setup(self):
        self._ready = True
        yield self.env.timeout(0)

    def alloc(self, size: int):
        self._require_setup()
        region = yield from self._host.alloc(size)
        handle = next(self._handles)
        self._regions[handle] = region
        return handle

    def free(self, handle: int):
        self._require_setup()
        yield from self._host.free(self._regions.pop(handle))

    def read(self, handle: int, offset: int, size: int):
        self._require_setup()
        result = yield from self._host.load(self._regions[handle], offset,
                                            size)
        return result

    def write(self, handle: int, offset: int, data: bytes):
        self._require_setup()
        latency = yield from self._host.store(self._regions[handle], offset,
                                              data)
        return latency

"""The extend path: application computation offloading (paper section 4.6).

Offloads deploy to the on-board FPGA (fast, per-operation cycle cost) or
to the ARM (slower per-op cost), and each offload gets its *own* PID and
remote virtual address space, accessed through exactly the same virtual
memory interface client processes use — the design that makes writing an
offload feel like ordinary multi-threaded programming.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from repro.core.addr import AccessType, Permission
from repro.core.pipeline import FastPath, Status
from repro.core.slowpath import SlowPath
from repro.params import CBoardParams


class OffloadError(Exception):
    """Raised inside offload handlers for application-level failures."""


@dataclass
class OffloadResult:
    ok: bool
    value: Any = None
    error: Optional[str] = None


class OffloadContext:
    """Virtual-memory API an offload uses to touch on-board memory.

    All accesses run through the fast path with the offload's own PID, so
    they are translated, permission-checked, and can fault, exactly like
    accesses from a CN — but without any network hop.
    """

    def __init__(self, env, pid: int, fast_path: FastPath,
                 slow_path: SlowPath, params: CBoardParams,
                 on_fpga: bool = True):
        self.env = env
        self.pid = pid
        self.fast_path = fast_path
        self.slow_path = slow_path
        self.params = params
        self.on_fpga = on_fpga
        self.ops = 0
        self.active_ns = 0

    def _compute(self, cycles: int):
        """Charge offload compute time (FPGA cycles or ARM-scaled)."""
        scale = 1.0 if self.on_fpga else 8.0   # ARM runs the same logic slower
        cost = int(round(cycles * self.params.cycle_ns * scale))
        self.active_ns += cost
        yield self.env.timeout(cost)

    def alloc(self, size: int,
              permission: Permission = Permission.READ_WRITE):
        """Allocate in the offload's own RAS (slow path); returns the VA."""
        response = yield from self.slow_path.handle_alloc(
            self.pid, size, permission=permission)
        if not response.ok:
            raise OffloadError(f"offload alloc failed: {response.error}")
        return response.va

    def free(self, va: int):
        response = yield from self.slow_path.handle_free(self.pid, va)
        if not response.ok:
            raise OffloadError(f"offload free failed: {response.error}")
        return response.freed_pages

    def read(self, va: int, size: int, pid: Optional[int] = None):
        """Read on-board memory; ``pid`` defaults to the offload's own RAS.

        Passing a client's PID (received via the caller-PID argument, see
        :meth:`ExtendPath.register`) lets an offload share data with CN
        processes — the paper's pointer-chasing API works this way.
        """
        self.ops += 1
        result = yield from self.fast_path.execute(
            pid if pid is not None else self.pid, AccessType.READ, va, size,
            wire_bytes=size, serialize_dma=False)
        if result.status is not Status.OK:
            raise OffloadError(f"offload read at {va:#x}: {result.status.value}")
        return result.data

    def write(self, va: int, data: bytes, pid: Optional[int] = None):
        self.ops += 1
        result = yield from self.fast_path.execute(
            pid if pid is not None else self.pid, AccessType.WRITE, va,
            len(data), data=data, wire_bytes=len(data))
        if result.status is not Status.OK:
            raise OffloadError(f"offload write at {va:#x}: {result.status.value}")

    def read_many(self, extents, pid: Optional[int] = None):
        """Issue many reads concurrently (a pipelined gather engine).

        ``extents`` is a list of ``(va, size)``; returns the data blobs in
        order.  The reads overlap in the fast path the way a hardware
        gather unit keeps multiple DRAM requests outstanding.
        """
        target_pid = pid if pid is not None else self.pid
        processes = []
        for va, size in extents:
            self.ops += 1
            processes.append(self.env.process(self.fast_path.execute(
                target_pid, AccessType.READ, va, size, wire_bytes=size,
                serialize_dma=False)))
        yield self.env.all_of(processes)
        blobs = []
        for (va, _size), process in zip(extents, processes):
            result = process.value
            if result.status is not Status.OK:
                raise OffloadError(
                    f"offload read at {va:#x}: {result.status.value}")
            blobs.append(result.data)
        return blobs

    def read_u64(self, va: int, pid: Optional[int] = None):
        data = yield from self.read(va, 8, pid=pid)
        return int.from_bytes(data, "little")

    def write_u64(self, va: int, value: int, pid: Optional[int] = None):
        yield from self.write(va, value.to_bytes(8, "little"), pid=pid)


#: An offload handler: generator taking (ctx, args) and returning a value.
Handler = Callable[[OffloadContext, Any], Generator]


class ExtendPath:
    """Registry + executor for computation offloads."""

    _next_offload_pid = 1 << 20   # offload PIDs live above client PIDs

    def __init__(self, env, params: CBoardParams, fast_path: FastPath,
                 slow_path: SlowPath):
        self.env = env
        self.params = params
        self.fast_path = fast_path
        self.slow_path = slow_path
        self._offloads: dict[str, tuple[Handler, OffloadContext, bool]] = {}
        self.invocations = 0

    def register(self, name: str, handler: Handler,
                 on_fpga: bool = True) -> OffloadContext:
        """Deploy an offload; returns its context (own PID and RAS).

        A handler taking ``(ctx, args)`` sees only its own RAS; a handler
        taking ``(ctx, args, caller_pid)`` also receives the PID of the
        invoking client process (taken from the request header, so clients
        cannot spoof it) and may pass it to ``ctx.read``/``ctx.write`` to
        share the caller's memory.
        """
        if name in self._offloads:
            raise ValueError(f"offload {name!r} already registered")
        pid = ExtendPath._next_offload_pid
        ExtendPath._next_offload_pid += 1
        ctx = OffloadContext(self.env, pid, self.fast_path, self.slow_path,
                             self.params, on_fpga=on_fpga)
        takes_caller = len(inspect.signature(handler).parameters) >= 3
        self._offloads[name] = (handler, ctx, takes_caller)
        return ctx

    def names(self) -> list[str]:
        return sorted(self._offloads)

    def context(self, name: str) -> OffloadContext:
        return self._offloads[name][1]

    def caller_aware(self, name: str) -> bool:
        return self._offloads[name][2]

    def invoke(self, name: str, args: Any, caller_pid: int = 0):
        """Process-generator: run an offload; returns OffloadResult."""
        entry = self._offloads.get(name)
        if entry is None:
            return OffloadResult(ok=False, error=f"unknown offload {name!r}")
        handler, ctx, takes_caller = entry
        self.invocations += 1
        try:
            if takes_caller:
                value = yield from handler(ctx, args, caller_pid)
            else:
                value = yield from handler(ctx, args)
            return OffloadResult(ok=True, value=value)
        except OffloadError as exc:
            return OffloadResult(ok=False, error=str(exc))

"""The overflow-free hash-based page table (paper section 4.2).

All PTEs from *all* processes live in a single flat hash table whose size
is proportional to the MN's physical memory.  The table's location is
fixed, so the fast path reaches any PTE in **at most one DRAM access**: it
hashes (PID, VPN) to a bucket and fetches the whole K-slot bucket in one
access.  Overflow is impossible at runtime because the slow-path VA
allocator refuses to hand out any virtual range whose pages would not fit
their buckets (see :mod:`repro.core.va_allocator`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.addr import PageSpec, Permission, pte_hash


@dataclass
class PageTableEntry:
    """One slot in a hash bucket.

    ``present`` means a physical page is mapped; a valid-but-not-present
    entry is an allocated virtual page awaiting its first touch (the state
    that triggers the hardware page-fault path).
    """

    pid: int
    vpn: int
    permission: Permission
    ppn: Optional[int] = None

    @property
    def present(self) -> bool:
        return self.ppn is not None


@dataclass
class _Bucket:
    slots: list[PageTableEntry] = field(default_factory=list)


class PageTableFullError(Exception):
    """A bucket had no free slot (only reachable if allocation-time
    overflow checking is bypassed)."""


class HashPageTable:
    """Flat, single, overflow-free page table for the whole MN.

    Parameters
    ----------
    physical_pages:
        Number of physical pages the MN hosts; with ``overprovision`` this
        fixes the total slot count (paper default: 2x extra slots).
    slots_per_bucket:
        K — the bucket is fetched whole in one DRAM access.
    """

    def __init__(self, physical_pages: int, slots_per_bucket: int = 4,
                 overprovision: float = 2.0, page_spec: PageSpec | None = None):
        if physical_pages <= 0:
            raise ValueError(f"physical_pages must be positive, got {physical_pages}")
        if slots_per_bucket <= 0:
            raise ValueError(f"slots_per_bucket must be positive, got {slots_per_bucket}")
        if overprovision < 1.0:
            raise ValueError(f"overprovision must be >= 1.0, got {overprovision}")
        total_slots = max(slots_per_bucket,
                          int(physical_pages * overprovision))
        self.slots_per_bucket = slots_per_bucket
        self.num_buckets = max(1, -(-total_slots // slots_per_bucket))
        self.physical_pages = physical_pages
        self.page_spec = page_spec
        self._buckets: dict[int, _Bucket] = {}
        self._index: dict[tuple[int, int], PageTableEntry] = {}

    # -- size accounting -----------------------------------------------------

    @property
    def total_slots(self) -> int:
        return self.num_buckets * self.slots_per_bucket

    @property
    def entry_count(self) -> int:
        return len(self._index)

    def footprint_bytes(self, pte_bytes: int = 16) -> int:
        """Off-chip DRAM the table occupies (paper: 0.4% of physical memory
        with 4 MB pages)."""
        return self.total_slots * pte_bytes

    # -- hashing ---------------------------------------------------------------

    def bucket_of(self, pid: int, vpn: int) -> int:
        return pte_hash(pid, vpn, self.num_buckets)

    def bucket_occupancy(self, bucket_idx: int) -> int:
        bucket = self._buckets.get(bucket_idx)
        return len(bucket.slots) if bucket else 0

    # -- allocation-time overflow check ---------------------------------------

    def can_insert(self, pid: int, vpns: Iterable[int]) -> bool:
        """Would inserting all these (pid, vpn) pages overflow any bucket?

        This is the check the slow-path VA allocator runs before accepting
        a candidate virtual range; counting is done against current
        occupancy *plus* the candidate batch itself.
        """
        pending: dict[int, int] = {}
        for vpn in vpns:
            if (pid, vpn) in self._index:
                return False  # already mapped: the range is not free
            idx = self.bucket_of(pid, vpn)
            pending[idx] = pending.get(idx, 0) + 1
        return all(
            self.bucket_occupancy(idx) + count <= self.slots_per_bucket
            for idx, count in pending.items()
        )

    def first_conflict(self, pid: int, vpns: Iterable[int]) -> Optional[int]:
        """First VPN whose insertion would fail, or ``None`` if all fit.

        Accept/reject agrees exactly with :meth:`can_insert` (``None``
        iff ``can_insert`` is true); retry-aware VA policies use the
        conflicting VPN to jump their search past it.
        """
        pending: dict[int, int] = {}
        bucket_vpns: dict[int, int] = {}  # bucket -> first vpn landing in it
        for vpn in vpns:
            if (pid, vpn) in self._index:
                return vpn  # already mapped: the range is not free
            idx = self.bucket_of(pid, vpn)
            pending[idx] = pending.get(idx, 0) + 1
            bucket_vpns.setdefault(idx, vpn)
        for idx, count in pending.items():
            if self.bucket_occupancy(idx) + count > self.slots_per_bucket:
                return bucket_vpns[idx]
        return None

    # -- mutation ---------------------------------------------------------------

    def insert(self, pid: int, vpn: int, permission: Permission,
               ppn: Optional[int] = None) -> PageTableEntry:
        """Install a PTE; valid immediately, present only if ``ppn`` given."""
        key = (pid, vpn)
        if key in self._index:
            raise ValueError(f"PTE for pid={pid} vpn={vpn} already exists")
        idx = self.bucket_of(pid, vpn)
        bucket = self._buckets.setdefault(idx, _Bucket())
        if len(bucket.slots) >= self.slots_per_bucket:
            raise PageTableFullError(
                f"bucket {idx} overflow inserting pid={pid} vpn={vpn} "
                "(allocation-time checking was bypassed)")
        entry = PageTableEntry(pid=pid, vpn=vpn, permission=permission, ppn=ppn)
        bucket.slots.append(entry)
        self._index[key] = entry
        return entry

    def lookup(self, pid: int, vpn: int) -> Optional[PageTableEntry]:
        """Fetch the PTE; in hardware this is exactly one DRAM bucket read."""
        return self._index.get((pid, vpn))

    def set_present(self, pid: int, vpn: int, ppn: int) -> PageTableEntry:
        """Map a physical page into an existing valid PTE (fault handling)."""
        entry = self._index.get((pid, vpn))
        if entry is None:
            raise KeyError(f"no PTE for pid={pid} vpn={vpn}")
        if entry.present:
            raise ValueError(f"PTE pid={pid} vpn={vpn} already present (ppn={entry.ppn})")
        entry.ppn = ppn
        return entry

    def remove(self, pid: int, vpn: int) -> PageTableEntry:
        """Drop a PTE (rfree); returns the removed entry."""
        key = (pid, vpn)
        entry = self._index.pop(key, None)
        if entry is None:
            raise KeyError(f"no PTE for pid={pid} vpn={vpn}")
        bucket = self._buckets[self.bucket_of(pid, vpn)]
        bucket.slots.remove(entry)
        return entry

    def entries_for_pid(self, pid: int) -> list[PageTableEntry]:
        return [entry for (epid, _), entry in self._index.items() if epid == pid]

"""The ARM software slow path (paper sections 4.2-4.3, 5).

Metadata operations (ralloc/rfree) leave the ASIC through an RX ring that
a dedicated ARM core busy-polls; worker threads run the VA allocator
(including its hash-overflow retry loop) and post responses to a TX ring.
The 40 us FPGA<->ARM interconnect delay is mitigated exactly the way the
paper describes: polling (so each hop costs the ~2 us handoff, not 40 us)
and a shadow copy of the page table in ARM-local DRAM that is synced in
the background.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.addr import Permission
from repro.core.pa_allocator import PAAllocator
from repro.core.tlb import TLB
from repro.core.va_allocator import AllocationError, VAAllocator
from repro.params import CBoardParams
from repro.sim import Environment, Resource


@dataclass
class AllocResponse:
    """Result of a slow-path ralloc."""

    ok: bool
    va: int = 0
    size: int = 0
    retries: int = 0
    error: Optional[str] = None


@dataclass
class FreeResponse:
    ok: bool
    freed_pages: int = 0
    error: Optional[str] = None


class SlowPath:
    """ARM-side metadata handling with explicit crossing/handling costs."""

    def __init__(self, env: Environment, params: CBoardParams,
                 va_allocator: VAAllocator, pa_allocator: PAAllocator,
                 tlb: TLB, dram=None):
        self.env = env
        self.params = params
        self.va_allocator = va_allocator
        self.pa_allocator = pa_allocator
        self.tlb = tlb
        self.dram = dram
        # One polling core hands work to the remaining worker cores.
        self._workers = Resource(env, capacity=max(1, params.arm_cores - 1))
        self.allocs = 0
        self.frees = 0
        self.shadow_syncs = 0
        # Fault injection: a stalled ARM (GC pause, kernel hiccup) stops
        # picking work off the RX ring; requests queue here until the stall
        # lifts.  The fast path is unaffected — only metadata ops stall.
        self._stall_gate = None
        self.stalled_requests = 0
        # Span tracing (None = disabled); the owning CBoard sets both.
        self.tracer = None
        self.track = "slowpath"
        self._stall_span = None
        # Runtime correctness checking (repro.verify); metadata ops are
        # where pages move between free list, async buffer, and PTEs, so
        # the verifier runs a full conservation sweep after each one.
        self.verifier = None

    def begin_stall(self) -> None:
        """Stop servicing new slow-path work until :meth:`end_stall`."""
        if self._stall_gate is None:
            self._stall_gate = self.env.event()
            if self.tracer is not None:
                self._stall_span = self.tracer.begin("arm_stall", "fault",
                                                     self.track)

    def end_stall(self) -> None:
        """Resume servicing; queued requests proceed in arrival order."""
        gate = self._stall_gate
        if gate is not None:
            self._stall_gate = None
            gate.succeed()
            if self.tracer is not None:
                self.tracer.end(self._stall_span)
                self._stall_span = None

    @property
    def stalled(self) -> bool:
        return self._stall_gate is not None

    def _stall_check(self):
        """Park the caller while the ARM is stalled."""
        while self._stall_gate is not None:
            self.stalled_requests += 1
            yield self._stall_gate

    def _handoff(self):
        """RX-ring poll pickup plus TX-ring response posting."""
        yield self.env.timeout(self.params.arm_polling_handoff_ns)

    def handle_alloc(self, pid: int, size: int,
                     permission: Permission = Permission.READ_WRITE,
                     fixed_va: Optional[int] = None):
        """Process-generator for ralloc; returns :class:`AllocResponse`.

        Cost = handoff in + VA-tree search + 0.5 ms per overflow retry
        (paper section 7.1) + handoff out.  The PTE inserts are forwarded
        to the fast path's table as *valid, not present* entries.
        """
        tracer = self.tracer
        span = None
        if tracer is not None:
            span = tracer.begin("slowpath:alloc", "slowpath", self.track,
                                args={"pid": pid, "size": size})
        yield from self._stall_check()
        worker = self._workers.request()
        yield worker
        try:
            yield from self._handoff()
            yield self.env.timeout(self.params.arm_va_search_ns)
            try:
                outcome = self.va_allocator.allocate(
                    pid, size, permission=permission, fixed_va=fixed_va)
            except (AllocationError, ValueError) as exc:
                yield from self._handoff()
                if tracer is not None:
                    tracer.end(span, ok=False)
                return AllocResponse(ok=False, error=str(exc))
            if outcome.retries:
                yield self.env.timeout(outcome.retries * self.params.arm_retry_ns)
            self.allocs += 1
            # Shadow page table kept in ARM-local DRAM; the sync to the
            # on-board table happens in the background (not on this path).
            self.shadow_syncs += 1
            yield from self._handoff()
            if self.verifier is not None:
                self.verifier.on_metadata_op(self)
            if tracer is not None:
                tracer.end(span, ok=True, retries=outcome.retries)
            return AllocResponse(ok=True, va=outcome.allocation.va,
                                 size=outcome.allocation.size,
                                 retries=outcome.retries)
        finally:
            self._workers.release(worker)

    def handle_free(self, pid: int, va: int):
        """Process-generator for rfree; returns :class:`FreeResponse`.

        Recycled physical pages are zeroed before reuse so a future owner
        can never observe stale bytes (R5), and stale TLB translations are
        shot down for consistency with in-flight operations.
        """
        tracer = self.tracer
        span = None
        if tracer is not None:
            span = tracer.begin("slowpath:free", "slowpath", self.track,
                                args={"pid": pid, "va": va})
        yield from self._stall_check()
        worker = self._workers.request()
        yield worker
        try:
            yield from self._handoff()
            yield self.env.timeout(self.params.arm_va_search_ns)
            try:
                allocation, freed_ppns = self.va_allocator.free(pid, va)
            except KeyError as exc:
                yield from self._handoff()
                if tracer is not None:
                    tracer.end(span, ok=False)
                return FreeResponse(ok=False, error=str(exc))
            page_size = self.va_allocator.page_spec.page_size
            first_vpn = allocation.va // page_size
            for vpn in range(first_vpn, first_vpn + allocation.size // page_size):
                self.tlb.invalidate(pid, vpn)
            for ppn in freed_ppns:
                if self.dram is not None:
                    self.dram.zero(ppn * page_size, page_size)
                self.pa_allocator.free(ppn, pid=pid)
            self.frees += 1
            yield from self._handoff()
            if self.verifier is not None:
                self.verifier.on_metadata_op(self)
            if tracer is not None:
                tracer.end(span, ok=True, freed_pages=len(freed_ppns))
            return FreeResponse(ok=True, freed_pages=len(freed_ppns))
        finally:
            self._workers.release(worker)

    def single_pa_alloc(self):
        """Process-generator: one synchronous PA allocation (Figure 12).

        Exposed so the allocation benchmark can measure the paper's
        '<20 us' number directly; the data path never calls this — it pops
        the async buffer instead.
        """
        yield self.env.timeout(self.params.arm_pa_alloc_ns)
        return self.pa_allocator.allocate()

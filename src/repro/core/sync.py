"""MN-side synchronization primitives (paper sections 3.1 and 4.5).

Locks, fences, and atomics must live at the MN because the threads they
coordinate may run on different CNs.  Atomic operations execute through a
single hardware atomic unit — the MN blocks further atomics until the
current one completes — and each executes in bounded time, so the state
kept here is one of only two kinds of MN state, and it is bounded.

Atomic words are 8 bytes, little-endian, resident in the target RAS page.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.memory import DRAM
from repro.sim import Environment, Resource

ATOMIC_WIDTH = 8


@dataclass(frozen=True)
class AtomicOp:
    """Descriptor carried in an ATOMIC packet's payload."""

    kind: str                      # "tas" | "cas" | "faa" | "store"
    expected: Optional[int] = None  # cas only
    value: Optional[int] = None     # cas/faa/store

    def __post_init__(self) -> None:
        if self.kind not in ("tas", "cas", "faa", "store"):
            raise ValueError(f"unknown atomic kind {self.kind!r}")
        if self.kind == "cas" and (self.expected is None or self.value is None):
            raise ValueError("cas needs expected and value")
        if self.kind in ("faa", "store") and self.value is None:
            raise ValueError(f"{self.kind} needs a value")


@dataclass(frozen=True)
class AtomicResult:
    """Old value plus a success bit (TAS/CAS acquisition outcome)."""

    old_value: int
    success: bool

    def to_bytes(self) -> bytes:
        return self.old_value.to_bytes(ATOMIC_WIDTH, "little") + (
            b"\x01" if self.success else b"\x00")


class AtomicUnit:
    """Serializes atomic read-modify-write operations against DRAM.

    Each operation costs one DRAM read plus one DRAM write (RMW) of the
    8-byte word; the unit holds a lock for that duration so concurrent
    atomics to any address serialize, matching the hardware's behaviour.
    """

    def __init__(self, env: Environment, dram: DRAM):
        self.env = env
        self.dram = dram
        self._unit = Resource(env, capacity=1)
        self.operations = 0
        # Occupancy watermarks: max_active > 1 would mean the serialization
        # claim is broken (repro.verify checks it; plain ints, so tracking
        # costs no events and no RNG).
        self.active = 0
        self.max_active = 0

    def execute(self, pa: int, op: AtomicOp):
        """Process-generator performing the RMW; returns AtomicResult."""
        request = self._unit.request()
        yield request
        self.active += 1
        if self.active > self.max_active:
            self.max_active = self.active
        try:
            yield self.env.timeout(self.dram.access_time_ns(ATOMIC_WIDTH))
            old = int.from_bytes(self.dram.read(pa, ATOMIC_WIDTH), "little")
            new, success = self._apply(old, op)
            if new is not None:
                self.dram.write(pa, new.to_bytes(ATOMIC_WIDTH, "little"))
                yield self.env.timeout(self.dram.access_time_ns(ATOMIC_WIDTH))
            self.operations += 1
            return AtomicResult(old_value=old, success=success)
        finally:
            self.active -= 1
            self._unit.release(request)

    @staticmethod
    def _apply(old: int, op: AtomicOp) -> tuple[Optional[int], bool]:
        """Return (new value to write or None, success flag)."""
        mask = (1 << (8 * ATOMIC_WIDTH)) - 1
        if op.kind == "tas":
            if old == 0:
                return 1, True
            return None, False
        if op.kind == "cas":
            if old == op.expected:
                return op.value & mask, True
            return None, False
        if op.kind == "faa":
            return (old + op.value) & mask, True
        # store
        return op.value & mask, True

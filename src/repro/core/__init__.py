"""CBoard memory-node model: the paper's primary contribution.

Subpackages implement the hardware virtual-memory system (overflow-free
hash page table, CAM TLB, bounded page-fault handling), the deterministic
fast-path pipeline, the ARM slow path (VA/PA allocation, shadow metadata),
MN-side synchronization primitives, the retry dedup buffer, and the extend
path for computation offloading.
"""

from repro.core.addr import (
    PAGE_SIZES,
    AccessType,
    Permission,
    PageSpec,
    ProtectionError,
)
from repro.core.cboard import CBoard
from repro.core.mat import MatchActionTable, MatchRule, Path
from repro.core.memory import DRAM
from repro.core.page_table import HashPageTable, PageTableEntry
from repro.core.simboard import SimBoard
from repro.core.tlb import TLB
from repro.core.va_allocator import AllocationError, VAAllocator

__all__ = [
    "AccessType",
    "AllocationError",
    "CBoard",
    "DRAM",
    "HashPageTable",
    "MatchActionTable",
    "MatchRule",
    "PAGE_SIZES",
    "PageSpec",
    "PageTableEntry",
    "Path",
    "Permission",
    "ProtectionError",
    "SimBoard",
    "TLB",
    "VAAllocator",
]

"""Physical page allocation and the async free-page buffer (section 4.3).

Single PA allocations are slow (complex free-list manipulation on the
ARM), so they never sit on the fault path.  Instead the ARM continuously
*reserves* free physical pages into a bounded async buffer; the hardware
page-fault handler pops a pre-reserved page in bounded time.  The refill
throughput exceeds line-rate fault arrival, so the buffer only underruns
when physical memory is exhausted (oversubscription pressure), which the
model surfaces explicitly.

The free-page bookkeeping itself is pluggable (:mod:`repro.alloc`): the
default FIFO free-list is bit-identical to the paper's allocator, while
slab / buddy / per-process-arena strategies trade fragmentation against
ARM slow-path crossings.  In arena mode each process additionally gets
its own async buffer (:class:`ArenaBufferBank`), so fault-path pops stop
contending on one shared queue.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.alloc.pa_strategies import (
    DoubleFreeError,
    OutOfMemoryError,
    PAStrategy,
    make_pa_strategy,
)
from repro.sim import Environment, Store

__all__ = [
    "ArenaBufferBank",
    "AsyncBuffer",
    "DoubleFreeError",
    "OutOfMemoryError",
    "PAAllocator",
]


class PAAllocator:
    """Physical-page accounting over a pluggable strategy.

    The default ``"freelist"`` strategy reproduces the original FIFO
    free-list exactly (same pop/recycle order).  ``strategy`` accepts a
    name or a ready :class:`~repro.alloc.pa_strategies.PAStrategy`.
    """

    def __init__(self, physical_pages: int,
                 strategy: Union[str, PAStrategy] = "freelist",
                 alloc_params=None):
        if physical_pages <= 0:
            raise ValueError(f"physical_pages must be positive, got {physical_pages}")
        self.physical_pages = physical_pages
        if isinstance(strategy, PAStrategy):
            if strategy.physical_pages != physical_pages:
                raise ValueError("strategy pool size mismatch")
            self.strategy = strategy
        elif alloc_params is not None:
            self.strategy = make_pa_strategy(
                strategy, physical_pages,
                slab_pages=alloc_params.slab_pages,
                slab_classes=alloc_params.slab_classes,
                arena_batch_pages=alloc_params.arena_batch_pages,
                arena_stash_max=alloc_params.arena_stash_max)
        else:
            self.strategy = make_pa_strategy(strategy, physical_pages)
        self._reserved = 0  # pages sitting in async buffers

    @property
    def free_pages(self) -> int:
        return self.strategy.free_pages

    @property
    def used_pages(self) -> int:
        return self.physical_pages - self.free_pages - self._reserved

    @property
    def utilization(self) -> float:
        """Fraction of physical pages mapped or reserved."""
        return 1.0 - self.free_pages / self.physical_pages

    @property
    def slow_crossings(self) -> int:
        """Global-pool touches on the ARM (arenas exist to amortize these)."""
        return self.strategy.slow_crossings

    @property
    def fragmentation(self) -> float:
        """Strategy-reported external-fragmentation ratio in [0, 1]."""
        return self.strategy.fragmentation

    def allocate(self, pid: Optional[int] = None) -> int:
        """Take one free page (slow-path operation)."""
        return self.strategy.allocate(pid)

    def free(self, ppn: int, pid: Optional[int] = None) -> None:
        """Return a page to the free pool.

        Raises :class:`DoubleFreeError` (a ``ValueError``) if the page is
        already free — a double free would silently duplicate the page
        and break conservation.
        """
        if not 0 <= ppn < self.physical_pages:
            raise ValueError(f"ppn {ppn} out of range")
        self.strategy.free(ppn, pid)

    def free_ppns(self):
        """Iterator over every currently-free PPN (for invariant sweeps)."""
        return self.strategy.free_ppns()

    def is_free(self, ppn: int) -> bool:
        return self.strategy.is_free(ppn)

    def check(self):
        """Strategy-internal consistency audit; ``[]`` when healthy."""
        return self.strategy.check()

    def stats(self) -> dict:
        out = self.strategy.stats()
        out["reserved"] = self._reserved
        out["used_pages"] = self.used_pages
        return out

    @property
    def _free(self) -> "_FreeListView":
        """Back-compat view of the freelist strategy's deque.

        Mutations go through the view so the strategy's double-free
        shadow set stays consistent.  Only meaningful for the default
        strategy; other strategies have no single free list.
        """
        strategy = self.strategy
        if not hasattr(strategy, "_free"):
            raise AttributeError(
                f"strategy {strategy.name!r} has no flat free list")
        return _FreeListView(strategy)


class _FreeListView:
    """Deque-like window onto :class:`FreeListStrategy` internals."""

    def __init__(self, strategy: PAStrategy):
        self._strategy = strategy

    def __len__(self) -> int:
        return len(self._strategy._free)

    def __iter__(self):
        return iter(self._strategy._free)

    def __contains__(self, ppn: int) -> bool:
        return ppn in self._strategy._free_set

    def append(self, ppn: int) -> None:
        self._strategy._free.append(ppn)
        self._strategy._free_set.add(ppn)

    def remove(self, ppn: int) -> None:
        self._strategy._free.remove(ppn)
        self._strategy._free_set.discard(ppn)

    def popleft(self) -> int:
        ppn = self._strategy._free.popleft()
        self._strategy._free_set.discard(ppn)
        return ppn


class AsyncBuffer:
    """Bounded buffer of pre-reserved free PPNs, refilled by the ARM.

    The fast path's fault handler calls :meth:`pop`; the refill process
    (:meth:`refill_process`) runs forever on the simulation environment,
    paying the slow-path allocation cost per page *off* the critical path.

    ``pid`` scopes the buffer to one process arena (``None`` = shared):
    the allocator's strategy sees it on every allocate/free so arena
    stashes stay process-local.
    """

    def __init__(self, env: Environment, allocator: PAAllocator,
                 depth: int, refill_ns: int, pid: Optional[int] = None):
        if depth <= 0:
            raise ValueError(f"depth must be positive, got {depth}")
        if refill_ns < 0:
            raise ValueError(f"refill_ns must be non-negative, got {refill_ns}")
        self.env = env
        self.allocator = allocator
        self.depth = depth
        self.refill_ns = refill_ns
        self.pid = pid
        self._store = Store(env, capacity=depth)
        self.underruns = 0
        self._proc = env.process(self.refill_process())

    def __len__(self) -> int:
        return len(self._store)

    def prefill(self) -> None:
        """Synchronously fill the buffer (board initialization)."""
        while (len(self._store.items) < self.depth
               and self.allocator.free_pages > 0):
            self.allocator._reserved += 1
            self._store.items.append(self.allocator.allocate(self.pid))
        # allocate() decrements _free; fix reserved accounting:
        # pages were moved free -> reserved, so _reserved counted above.

    def refill_process(self):
        """ARM background task: keep the buffer topped up."""
        while True:
            if (len(self._store.items) >= self.depth
                    or self.allocator.free_pages == 0):
                # Nothing to do; poll again after one allocation period.
                yield self.env.timeout(max(1, self.refill_ns))
                continue
            yield self.env.timeout(self.refill_ns)
            if self.allocator.free_pages == 0:
                continue
            ppn = self.allocator.allocate(self.pid)
            self.allocator._reserved += 1
            yield self._store.put(ppn)

    def pop(self):
        """Event yielding a pre-reserved PPN; immediate when stocked.

        An empty buffer (memory exhausted or refill outrun) registers an
        underrun — the condition the paper's design guarantees is rare.
        """
        if not self._store.items:
            self.underruns += 1
        get = self._store.get()

        def _account(event):
            if event.ok:
                self.allocator._reserved -= 1
        get.callbacks.append(_account)
        return get

    def return_unused(self, ppn: int) -> None:
        """Recycle a popped-but-unused page back to the free list."""
        self.allocator.free(ppn, self.pid)


class ArenaBufferBank:
    """Per-process async free-page buffers (arena strategy only).

    The fault handler asks :meth:`buffer_for` for the faulting process's
    buffer; buffers are created (and prefetched) lazily on first fault.
    All buffers share one :class:`PAAllocator`, so the board-level
    reservation accounting (``_reserved``) and conservation invariant
    are unchanged.  When one buffer runs dry while siblings still hold
    reserved pages, :meth:`rebalance_into` migrates a page ARM-locally
    so pressure in one process cannot strand pages reserved for another.
    """

    def __init__(self, env: Environment, allocator: PAAllocator,
                 depth: int, refill_ns: int):
        if depth <= 0:
            raise ValueError(f"depth must be positive, got {depth}")
        self.env = env
        self.allocator = allocator
        self.depth = depth
        self.refill_ns = refill_ns
        self._buffers: dict[int, AsyncBuffer] = {}
        self.created = 0
        self.rebalances = 0

    def __len__(self) -> int:
        return sum(len(buf) for buf in self._buffers.values())

    @property
    def underruns(self) -> int:
        return sum(buf.underruns for buf in self._buffers.values())

    def buffer_for(self, pid: int) -> AsyncBuffer:
        buf = self._buffers.get(pid)
        if buf is None:
            buf = AsyncBuffer(self.env, self.allocator, depth=self.depth,
                              refill_ns=self.refill_ns, pid=pid)
            buf.prefill()
            self._buffers[pid] = buf
            self.created += 1
        return buf

    def rebalance_into(self, pid: int) -> bool:
        """Move one reserved page from the fullest sibling to ``pid``.

        Must run *before* the caller's ``pop()`` so the migrated page is
        visible to the upcoming get; returns whether a page moved.
        """
        target = self.buffer_for(pid)
        if len(target._store.items) >= target.depth:
            return False
        victim = None
        for buf in self._buffers.values():
            if buf is target or not buf._store.items:
                continue
            if victim is None or len(buf._store.items) > len(victim._store.items):
                victim = buf
        if victim is None:
            return False
        ppn = victim._store.items.pop()
        target._store.items.append(ppn)
        self.rebalances += 1
        return True

    def stats(self) -> dict:
        return {
            "buffers": self.created,
            "pages_buffered": len(self),
            "underruns": self.underruns,
            "rebalances": self.rebalances,
        }

"""Physical page allocation and the async free-page buffer (section 4.3).

Single PA allocations are slow (complex free-list manipulation on the
ARM), so they never sit on the fault path.  Instead the ARM continuously
*reserves* free physical pages into a bounded async buffer; the hardware
page-fault handler pops a pre-reserved page in bounded time.  The refill
throughput exceeds line-rate fault arrival, so the buffer only underruns
when physical memory is exhausted (oversubscription pressure), which the
model surfaces explicitly.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.sim import Environment, Store


class OutOfMemoryError(Exception):
    """The MN has no free physical pages left."""


class PAAllocator:
    """Free-list of physical page numbers with utilization accounting."""

    def __init__(self, physical_pages: int):
        if physical_pages <= 0:
            raise ValueError(f"physical_pages must be positive, got {physical_pages}")
        self.physical_pages = physical_pages
        self._free: deque[int] = deque(range(physical_pages))
        self._reserved = 0  # pages sitting in the async buffer

    @property
    def free_pages(self) -> int:
        return len(self._free)

    @property
    def used_pages(self) -> int:
        return self.physical_pages - len(self._free) - self._reserved

    @property
    def utilization(self) -> float:
        """Fraction of physical pages mapped or reserved."""
        return 1.0 - len(self._free) / self.physical_pages

    def allocate(self) -> int:
        """Take one free page (slow-path operation)."""
        if not self._free:
            raise OutOfMemoryError("no free physical pages")
        return self._free.popleft()

    def free(self, ppn: int) -> None:
        """Return a page to the free list."""
        if not 0 <= ppn < self.physical_pages:
            raise ValueError(f"ppn {ppn} out of range")
        self._free.append(ppn)


class AsyncBuffer:
    """Bounded buffer of pre-reserved free PPNs, refilled by the ARM.

    The fast path's fault handler calls :meth:`pop`; the refill process
    (:meth:`refill_process`) runs forever on the simulation environment,
    paying the slow-path allocation cost per page *off* the critical path.
    """

    def __init__(self, env: Environment, allocator: PAAllocator,
                 depth: int, refill_ns: int):
        if depth <= 0:
            raise ValueError(f"depth must be positive, got {depth}")
        if refill_ns < 0:
            raise ValueError(f"refill_ns must be non-negative, got {refill_ns}")
        self.env = env
        self.allocator = allocator
        self.depth = depth
        self.refill_ns = refill_ns
        self._store = Store(env, capacity=depth)
        self.underruns = 0
        self._proc = env.process(self.refill_process())

    def __len__(self) -> int:
        return len(self._store)

    def prefill(self) -> None:
        """Synchronously fill the buffer (board initialization)."""
        while (len(self._store.items) < self.depth
               and self.allocator.free_pages > 0):
            self.allocator._reserved += 1
            self._store.items.append(self.allocator.allocate())
        # allocate() decrements _free; fix reserved accounting:
        # pages were moved free -> reserved, so _reserved counted above.

    def refill_process(self):
        """ARM background task: keep the buffer topped up."""
        while True:
            if (len(self._store.items) >= self.depth
                    or self.allocator.free_pages == 0):
                # Nothing to do; poll again after one allocation period.
                yield self.env.timeout(max(1, self.refill_ns))
                continue
            yield self.env.timeout(self.refill_ns)
            if self.allocator.free_pages == 0:
                continue
            ppn = self.allocator.allocate()
            self.allocator._reserved += 1
            yield self._store.put(ppn)

    def pop(self):
        """Event yielding a pre-reserved PPN; immediate when stocked.

        An empty buffer (memory exhausted or refill outrun) registers an
        underrun — the condition the paper's design guarantees is rare.
        """
        if not self._store.items:
            self.underruns += 1
        get = self._store.get()

        def _account(event):
            if event.ok:
                self.allocator._reserved -= 1
        get.callbacks.append(_account)
        return get

    def return_unused(self, ppn: int) -> None:
        """Recycle a popped-but-unused page back to the free list."""
        self.allocator.free(ppn)

"""On-chip state accounting (the paper's headline scalability claim).

    "each MN (CBoard) could support TBs of memory and thousands of
    application processes with only 1.5 MB on-chip memory"  (section 1)

This module computes the on-chip (SRAM/BRAM) bytes an MN must hold under
three designs, as functions of the client count, connection count, and
hosted memory — making the *scaling shape* checkable:

* **Clio** — bounded by design: TLB + async buffer + retry-dedup ring +
  MAT + sync-unit state.  None of it grows with clients or memory (the
  page table lives in off-chip DRAM).
* **RDMA RNIC** — caches that must grow with the working set to keep
  performance: QP state, MR metadata, and MTT (PTE) entries.
* **Go-Back-N MN** — per-connection sequence/buffer state
  (:mod:`repro.net.gbn`), linear in connections.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.gbn import connection_state_bytes
from repro.params import CBoardParams, RDMAParams

KB = 1 << 10
MB = 1 << 20

#: Conservative per-entry sizes (bytes).
TLB_ENTRY_BYTES = 16          # tag (pid,vpn) + ppn + perms
ASYNC_BUFFER_ENTRY_BYTES = 8  # one PPN
MAT_RULE_BYTES = 16
SYNC_UNIT_BYTES = 256         # atomic-unit registers + fence counters
QP_STATE_BYTES = 375          # paper-cited RDMA per-connection state
MR_ENTRY_BYTES = 32
PTE_ENTRY_BYTES = 16


@dataclass(frozen=True)
class StateBreakdown:
    """On-chip bytes by component for one MN design point."""

    design: str
    components: dict

    @property
    def total_bytes(self) -> int:
        return sum(self.components.values())


def clio_onchip_state(params: CBoardParams | None = None,
                      clients: int = 1000,
                      hosted_bytes: int = 1 << 40) -> StateBreakdown:
    """Clio's on-chip state: independent of ``clients`` and ``hosted_bytes``.

    The arguments are accepted (and ignored) to make the independence
    explicit at call sites that sweep them.
    """
    params = params or CBoardParams()
    components = {
        "tlb": params.tlb_entries * TLB_ENTRY_BYTES,
        "async_buffer": params.async_buffer_depth * ASYNC_BUFFER_ENTRY_BYTES,
        "retry_dedup_ring": params.retry_buffer_bytes,
        "mat": 64 * MAT_RULE_BYTES,
        "sync_unit": SYNC_UNIT_BYTES,
    }
    return StateBreakdown(design="clio", components=components)


def rdma_onchip_state(clients: int, mrs_per_client: int = 1,
                      hosted_bytes: int = 1 << 40,
                      params: RDMAParams | None = None,
                      full_working_set: bool = True) -> StateBreakdown:
    """RNIC on-chip state needed to serve ``clients`` at full speed.

    With ``full_working_set`` the caches are sized to hold every QP, MR,
    and hot PTE (what the performance in Figures 4-5 requires); otherwise
    the fixed cache sizes are reported (and misses pay PCIe crossings).
    """
    params = params or RDMAParams()
    if full_working_set:
        qps = clients
        mrs = clients * mrs_per_client
        # Hot PTEs: one per 2 MB huge page of hosted memory.
        ptes = max(1, hosted_bytes // (2 * MB))
    else:
        qps = params.qp_cache_entries
        mrs = params.mr_cache_entries
        ptes = params.pte_cache_entries
    components = {
        "qp_state": qps * QP_STATE_BYTES,
        "mr_cache": mrs * MR_ENTRY_BYTES,
        "pte_cache": ptes * PTE_ENTRY_BYTES,
    }
    return StateBreakdown(design="rdma", components=components)


def gbn_onchip_state(connections: int, window: int = 32) -> StateBreakdown:
    """A GBN-style reliable-transport MN: linear in connections."""
    components = {
        "connection_state": connections * connection_state_bytes(window),
    }
    return StateBreakdown(design="gbn", components=components)

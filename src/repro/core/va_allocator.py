"""Slow-path virtual address allocation (paper section 4.2).

The ARM software keeps a per-process tree of allocated VA ranges (the
analogue of Linux's vma tree).  ``ralloc`` finds a free range, then checks
that inserting every page of the candidate range into the hash page table
would overflow no bucket; if it would, it searches again from the next
candidate.  The retry count is the quantity Figure 13 reports: zero below
half utilization, bounded (~60) near full.

This trades allocation-time retries (slow path, microseconds each) for a
fast path that never sees a hash overflow — the core of the
"overflow-free" design.
"""

from __future__ import annotations

import bisect
from collections import Counter
from dataclasses import dataclass
from typing import Optional, Union

from repro.alloc.va_policies import VAPolicy, make_va_policy
from repro.core.addr import PageSpec, Permission
from repro.core.page_table import HashPageTable

#: First byte of every RAS; VA 0 stays unmapped so NULL faults loudly.
VA_BASE = 1 << 22
#: RAS spans 48 bits, like a conventional virtual address space.
VA_LIMIT = 1 << 48


class AllocationError(Exception):
    """No virtual range satisfying the overflow-free constraint was found."""


@dataclass(frozen=True)
class Allocation:
    """One allocated RAS range."""

    va: int
    size: int            # bytes, page-aligned
    permission: Permission

    @property
    def end(self) -> int:
        return self.va + self.size


@dataclass(frozen=True)
class AllocationOutcome:
    """Result of a ralloc: the range plus slow-path cost accounting."""

    allocation: Allocation
    retries: int          # failed candidate ranges before success


class _ProcessSpace:
    """Sorted allocated-range bookkeeping for one PID (the 'vma tree')."""

    def __init__(self) -> None:
        self.starts: list[int] = []
        self.allocations: list[Allocation] = []

    def overlapping(self, va: int, size: int) -> Optional[Allocation]:
        idx = bisect.bisect_right(self.starts, va) - 1
        if idx >= 0 and self.allocations[idx].end > va:
            return self.allocations[idx]
        if idx + 1 < len(self.allocations) and self.allocations[idx + 1].va < va + size:
            return self.allocations[idx + 1]
        return None

    def insert(self, allocation: Allocation) -> None:
        idx = bisect.bisect_left(self.starts, allocation.va)
        self.starts.insert(idx, allocation.va)
        self.allocations.insert(idx, allocation)

    def remove(self, va: int) -> Allocation:
        idx = bisect.bisect_left(self.starts, va)
        if idx >= len(self.starts) or self.starts[idx] != va:
            raise KeyError(f"no allocation at va={va:#x}")
        self.starts.pop(idx)
        return self.allocations.pop(idx)

    def find(self, va: int) -> Optional[Allocation]:
        """Allocation containing ``va``, if any."""
        idx = bisect.bisect_right(self.starts, va) - 1
        if idx >= 0 and self.allocations[idx].va <= va < self.allocations[idx].end:
            return self.allocations[idx]
        return None

    def next_gap(self, from_va: int, size: int) -> int:
        """First va >= from_va where [va, va+size) overlaps no allocation."""
        va = from_va
        while True:
            hit = self.overlapping(va, size)
            if hit is None:
                return va
            va = hit.end


class VAAllocator:
    """Per-process VA range allocator with hash-overflow avoidance."""

    def __init__(self, page_table: HashPageTable, page_spec: PageSpec,
                 max_retries: int = 4096,
                 policy: Union[str, VAPolicy] = "first-fit"):
        self.page_table = page_table
        self.page_spec = page_spec
        self.max_retries = max_retries
        self.policy = policy if isinstance(policy, VAPolicy) \
            else make_va_policy(policy)
        self._spaces: dict[int, _ProcessSpace] = {}
        self.total_retries = 0
        self.total_allocations = 0
        self.failed_allocations = 0
        #: retries-per-successful-alloc distribution (Fig. 13 material)
        self.retry_histogram: Counter[int] = Counter()

    def _space(self, pid: int) -> _ProcessSpace:
        return self._spaces.setdefault(pid, _ProcessSpace())

    # -- allocation ------------------------------------------------------------

    def allocate(self, pid: int, size: int,
                 permission: Permission = Permission.READ_WRITE,
                 fixed_va: Optional[int] = None) -> AllocationOutcome:
        """Allocate a page-aligned RAS range of at least ``size`` bytes.

        ``fixed_va`` implements mmap(MAP_FIXED)-style requests; per the
        paper's stated limitation, if the fixed range cannot be inserted
        without overflow Clio falls back to choosing a new range.
        """
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        alloc_size = self.page_spec.round_up(size)
        pages = alloc_size // self.page_spec.page_size
        space = self._space(pid)
        retries = 0

        if fixed_va is not None:
            if self.page_spec.page_offset(fixed_va):
                raise ValueError(f"fixed_va {fixed_va:#x} is not page-aligned")
            candidate = fixed_va
            if (space.overlapping(candidate, alloc_size) is None
                    and self._fits(pid, candidate, pages)):
                return self._commit(space, pid, candidate, alloc_size,
                                    pages, permission, retries)
            retries += 1  # the fixed range failed; fall through to search

        # The search policy yields candidate VAs; each failed probe sends
        # the first conflicting VPN back so retry-aware policies can steer.
        gen = self.policy.candidates(
            space, pid, alloc_size, self.page_spec.page_size,
            VA_BASE, VA_LIMIT, self.page_table)
        candidate = next(gen, None)
        while candidate is not None and retries <= self.max_retries:
            conflict = self._first_conflict(pid, candidate, pages)
            if conflict is None:
                outcome = self._commit(space, pid, candidate, alloc_size,
                                       pages, permission, retries)
                self.policy.committed(pid, candidate, alloc_size)
                return outcome
            retries += 1
            try:
                candidate = gen.send(conflict)
            except StopIteration:
                candidate = None

        self.total_retries += retries
        self.failed_allocations += 1
        raise AllocationError(
            f"pid={pid}: no overflow-free VA range for {size} bytes "
            f"after {retries} retries")

    def _fits(self, pid: int, va: int, pages: int) -> bool:
        first_vpn = self.page_spec.page_number(va)
        return self.page_table.can_insert(
            pid, range(first_vpn, first_vpn + pages))

    def _first_conflict(self, pid: int, va: int, pages: int) -> Optional[int]:
        first_vpn = self.page_spec.page_number(va)
        return self.page_table.first_conflict(
            pid, range(first_vpn, first_vpn + pages))

    def _commit(self, space: _ProcessSpace, pid: int, va: int, alloc_size: int,
                pages: int, permission: Permission,
                retries: int) -> AllocationOutcome:
        first_vpn = self.page_spec.page_number(va)
        for vpn in range(first_vpn, first_vpn + pages):
            self.page_table.insert(pid, vpn, permission)  # valid, not present
        allocation = Allocation(va=va, size=alloc_size, permission=permission)
        space.insert(allocation)
        self.total_retries += retries
        self.total_allocations += 1
        self.retry_histogram[retries] += 1
        return AllocationOutcome(allocation=allocation, retries=retries)

    # -- free --------------------------------------------------------------------

    def free(self, pid: int, va: int) -> tuple[Allocation, list[int]]:
        """Release a range; returns the allocation and the PPNs to recycle."""
        space = self._space(pid)
        allocation = space.remove(va)
        first_vpn = self.page_spec.page_number(allocation.va)
        pages = allocation.size // self.page_spec.page_size
        freed_ppns = []
        for vpn in range(first_vpn, first_vpn + pages):
            entry = self.page_table.remove(pid, vpn)
            if entry.present:
                freed_ppns.append(entry.ppn)
        self.policy.freed(pid, allocation.va, allocation.size)
        return allocation, freed_ppns

    # -- queries ------------------------------------------------------------------

    def lookup(self, pid: int, va: int) -> Optional[Allocation]:
        return self._space(pid).find(va)

    def allocated_bytes(self, pid: int) -> int:
        return sum(a.size for a in self._space(pid).allocations)

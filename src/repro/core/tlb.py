"""On-chip TLB: fixed-size content-addressable memory with LRU replacement.

A hit resolves translation with zero DRAM accesses; a miss costs exactly
one DRAM access (the page-table bucket fetch) — the property that gives
Figure 5 its two flat latency levels.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.core.addr import Permission


class TLB:
    """LRU translation cache keyed by (PID, VPN)."""

    def __init__(self, entries: int):
        if entries <= 0:
            raise ValueError(f"entries must be positive, got {entries}")
        self.capacity = entries
        self._entries: OrderedDict[tuple[int, int], tuple[int, Permission]] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, pid: int, vpn: int) -> Optional[tuple[int, Permission]]:
        """Return (PPN, permission) on hit, None on miss; updates LRU order."""
        key = (pid, vpn)
        hit = self._entries.get(key)
        if hit is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return hit

    def insert(self, pid: int, vpn: int, ppn: int, permission: Permission) -> None:
        """Install a translation, evicting the LRU entry if full."""
        key = (pid, vpn)
        if key in self._entries:
            self._entries.move_to_end(key)
        elif len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
        self._entries[key] = (ppn, permission)

    def invalidate(self, pid: int, vpn: int) -> bool:
        """Drop one translation (PTE update consistency); True if it existed."""
        return self._entries.pop((pid, vpn), None) is not None

    def invalidate_pid(self, pid: int) -> int:
        """Drop every translation of a process (process teardown)."""
        victims = [key for key in self._entries if key[0] == pid]
        for key in victims:
            del self._entries[key]
        return len(victims)

    def flush(self) -> None:
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

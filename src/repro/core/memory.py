"""On-board DRAM model: byte-addressable content plus access timing.

The store is sparse (lazily-allocated chunks) so a simulated 2 GB--4 TB
device costs host memory proportional only to the bytes actually written.
Timing follows a simple latency + bandwidth model: every access pays the
controller's fixed access latency, plus serialization of the payload at
the DRAM stream bandwidth.
"""

from __future__ import annotations

from repro.params import SEC


class DRAM:
    """Byte-addressable memory with deterministic access timing.

    ``access_ns`` is the fixed per-access latency of the (slow, on the FPGA
    prototype) board memory controller; ``bandwidth_bps`` bounds streaming
    throughput for large transfers.
    """

    CHUNK = 1 << 16  # 64 KB backing chunks

    def __init__(self, capacity: int, access_ns: int, bandwidth_bps: int):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if access_ns < 0:
            raise ValueError(f"access_ns must be non-negative, got {access_ns}")
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        self.capacity = capacity
        self.access_ns = access_ns
        self.bandwidth_bps = bandwidth_bps
        self._chunks: dict[int, bytearray] = {}
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0

    # -- content ------------------------------------------------------------

    def _check_range(self, pa: int, size: int) -> None:
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        if pa < 0 or pa + size > self.capacity:
            raise ValueError(
                f"access [{pa}, {pa + size}) outside capacity {self.capacity}")

    def read(self, pa: int, size: int) -> bytes:
        """Return ``size`` bytes at physical address ``pa`` (zero-filled)."""
        self._check_range(pa, size)
        self.reads += 1
        self.bytes_read += size
        out = bytearray(size)
        pos = 0
        while pos < size:
            chunk_idx, offset = divmod(pa + pos, self.CHUNK)
            take = min(size - pos, self.CHUNK - offset)
            chunk = self._chunks.get(chunk_idx)
            if chunk is not None:
                out[pos:pos + take] = chunk[offset:offset + take]
            pos += take
        return bytes(out)

    def write(self, pa: int, data: bytes) -> None:
        """Store ``data`` at physical address ``pa``."""
        self._check_range(pa, len(data))
        self.writes += 1
        self.bytes_written += len(data)
        pos = 0
        size = len(data)
        while pos < size:
            chunk_idx, offset = divmod(pa + pos, self.CHUNK)
            take = min(size - pos, self.CHUNK - offset)
            chunk = self._chunks.get(chunk_idx)
            if chunk is None:
                chunk = bytearray(self.CHUNK)
                self._chunks[chunk_idx] = chunk
            chunk[offset:offset + take] = data[pos:pos + take]
            pos += take

    def zero(self, pa: int, size: int) -> None:
        """Clear a range (used when recycling freed physical pages)."""
        self.write(pa, bytes(size))

    # -- timing ---------------------------------------------------------------

    def access_time_ns(self, size: int) -> int:
        """Latency of one access touching ``size`` payload bytes."""
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        stream = (size * 8 * SEC) // self.bandwidth_bps
        return self.access_ns + stream

    @property
    def resident_bytes(self) -> int:
        """Host-side memory actually backing the store (diagnostic)."""
        return len(self._chunks) * self.CHUNK

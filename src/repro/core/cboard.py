"""CBoard: the complete memory-node device (paper Figure 3).

An incoming packet crosses the thin MN network stack (integrity check +
ack generation only — the MN is "transportless"), then a Match-and-Action
Table routes it:

* **fast path** (ASIC): READ/WRITE/ATOMIC/FENCE — the deterministic
  hardware virtual-memory pipeline in :mod:`repro.core.pipeline`;
* **slow path** (ARM): ALLOC/FREE — metadata operations in
  :mod:`repro.core.slowpath`;
* **extend path** (FPGA/ARM): OFFLOAD — application computation in
  :mod:`repro.core.extend`.

The only two kinds of state the MN keeps beyond the page table are
reproduced here exactly: the bounded retry-dedup ring and the (bounded,
infrequent) synchronization state — fence drain tracking and the single
atomic unit.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Optional

from repro.core.addr import AccessType, PageSpec
from repro.core.extend import ExtendPath
from repro.core.mat import MatchActionTable, Path
from repro.core.memory import DRAM
from repro.core.pa_allocator import ArenaBufferBank, AsyncBuffer, PAAllocator
from repro.core.page_table import HashPageTable
from repro.core.pipeline import Breakdown, FastPath, Status
from repro.core.retry_buffer import RetryBuffer
from repro.core.slowpath import SlowPath
from repro.core.sync import AtomicOp, AtomicResult, AtomicUnit
from repro.core.tlb import TLB
from repro.core.va_allocator import VAAllocator
from repro.net.packet import ClioHeader, Packet, PacketType, fragment_payload
from repro.params import ClioParams
from repro.sim import Environment
from repro.telemetry.metrics import MetricsRegistry, StatsView
from repro.telemetry.spans import Tracer


@dataclass(slots=True)
class ResponseBody:
    """Payload of a RESPONSE packet."""

    status: Status
    data: Optional[bytes] = None          # read data fragment
    value: Any = None                      # alloc VA / offload result
    atomic: Optional[AtomicResult] = None
    breakdown: Optional[Breakdown] = None  # instrumentation (not on wire)


@dataclass(slots=True)
class _WriteProgress:
    """Per-request fragment countdown for multi-packet writes.

    Bounded: entries live only while a request's fragments are in the
    pipeline, and they are dropped as soon as the response is generated.
    """

    remaining: int
    status: Status = Status.OK
    breakdown: Breakdown = field(default_factory=Breakdown)


class CBoard:
    """One memory node: fast + slow + extend paths over on-board DRAM."""

    def __init__(self, env: Environment, params: ClioParams,
                 name: str = "mn0", dram_capacity: Optional[int] = None,
                 page_size: Optional[int] = None,
                 registry: Optional[MetricsRegistry] = None):
        self.env = env
        self.params = params
        self.name = name
        cb = params.cboard
        self.page_spec = PageSpec(page_size or cb.default_page_size)
        capacity = dram_capacity or cb.dram_capacity
        physical_pages = capacity // self.page_spec.page_size
        if physical_pages <= 0:
            raise ValueError("DRAM capacity below one page")

        self.dram = DRAM(capacity, cb.dram_access_ns, cb.dram_bandwidth_bps)
        self.page_table = HashPageTable(
            physical_pages, slots_per_bucket=cb.page_table_slots_per_bucket,
            overprovision=cb.page_table_overprovision,
            page_spec=self.page_spec)
        self.tlb = TLB(cb.tlb_entries)
        alloc = params.alloc
        self.pa_allocator = PAAllocator(physical_pages,
                                        strategy=alloc.pa_strategy,
                                        alloc_params=alloc)
        arena_mode = alloc.pa_strategy == "arena"
        # In arena mode each process gets its own async buffer (created
        # lazily at first fault); the shared buffer shrinks to depth 1 so
        # it does not strand hundreds of reserved pages nobody will pop.
        shared_depth = 1 if arena_mode else min(cb.async_buffer_depth,
                                                physical_pages)
        self.async_buffer = AsyncBuffer(
            env, self.pa_allocator, depth=shared_depth,
            refill_ns=cb.arm_pa_alloc_ns)
        self.async_buffer.prefill()
        self.buffer_bank = ArenaBufferBank(
            env, self.pa_allocator,
            depth=min(alloc.arena_buffer_depth, physical_pages),
            refill_ns=cb.arm_pa_alloc_ns) if arena_mode else None
        self.va_allocator = VAAllocator(self.page_table, self.page_spec,
                                        policy=alloc.va_policy)
        self.fast_path = FastPath(env, cb, self.dram, self.page_table,
                                  self.tlb, self.async_buffer, self.page_spec)
        self.fast_path.buffer_bank = self.buffer_bank
        self.slow_path = SlowPath(env, cb, self.va_allocator,
                                  self.pa_allocator, self.tlb, dram=self.dram)
        self.extend_path = ExtendPath(env, cb, self.fast_path, self.slow_path)
        self.atomic_unit = AtomicUnit(env, self.dram)
        self.retry_buffer = RetryBuffer(cb.retry_buffer_bytes)
        self.mat = MatchActionTable()

        self.topology = None
        self._write_progress: dict[int, _WriteProgress] = {}

        # Failure model.  The paper's crash-recovery argument: everything
        # except the page table is volatile and reconstructible, so a crash
        # wipes the TLB, retry buffer, and in-flight pipeline work while the
        # page table (board DRAM) survives.  ``_epoch`` tags every in-flight
        # handler; responses from a pre-crash epoch are discarded.
        self.alive = True
        self._epoch = 0

        # Delay constants, precomputed once (the per-packet int(round())
        # recomputation was measurable on the packet-echo hot path).
        self._netstack_ns = int(round(cb.netstack_cycles * cb.cycle_ns))
        self._pipeline_fixed_ns = cb.pipeline_ns()
        self._mtu = params.network.mtu

        # Fence state: all future requests block until in-flight ones drain.
        self._inflight = 0
        self._fence_barrier = None
        self._drain_events: deque = deque()

        # Counters
        self.requests_served = 0
        self.batch_subops_served = 0
        self.nacks_sent = 0
        self.bytes_served = 0
        self.crashes = 0
        self.restarts = 0
        self.packets_dropped_dead = 0      # packets arriving while crashed
        self.responses_discarded = 0       # in-flight work killed by a crash
        self.last_breakdown: Optional[Breakdown] = None

        # Telemetry.  Counters above stay plain attributes (the hot path
        # keeps its `+= 1`s); the registry holds function-backed views of
        # them under `cboard.<name>.*`, and stats() reads those views.
        # The tracer is None unless the cluster enables span tracing.
        self.tracer: Optional[Tracer] = None
        self._crash_span = None
        # Runtime correctness checking (repro.verify); None = disabled.
        self.verifier = None
        self.metrics = (registry if registry is not None
                        else MetricsRegistry()).scope(f"cboard.{name}")
        self._register_metrics()

    def _register_metrics(self) -> None:
        m = self.metrics
        self._stats = StatsView({
            "requests_served": m.counter(
                "requests_served", "requests answered with a response",
                fn=lambda: self.requests_served),
            "bytes_served": m.counter(
                "bytes_served", "payload bytes read/written", unit="B",
                fn=lambda: self.bytes_served),
            "tlb_hit_rate": m.gauge(
                "tlb.hit_rate", "TLB hits / lookups",
                fn=lambda: self.tlb.hit_rate),
            "page_faults": m.counter(
                "faults", "hardware page faults taken",
                fn=lambda: self.fast_path.faults),
            "nacks_sent": m.counter(
                "nacks_sent", "NACKs for corrupt arrivals",
                fn=lambda: self.nacks_sent),
            "retry_dedups": m.counter(
                "retry_dedups", "retries answered from the dedup ring",
                fn=lambda: self.retry_buffer.dedup_hits),
            "memory_utilization": m.gauge(
                "memory_utilization", "allocated fraction of DRAM pages",
                fn=lambda: self.pa_allocator.utilization),
            "pt_entries": m.gauge(
                "page_table.entries", "live PTEs",
                fn=lambda: self.page_table.entry_count),
            "alive": m.gauge(
                "alive", "fail-stop state", fn=lambda: self.alive),
            "crashes": m.counter(
                "crashes", fn=lambda: self.crashes),
            "restarts": m.counter(
                "restarts", fn=lambda: self.restarts),
            "packets_dropped_dead": m.counter(
                "packets_dropped_dead", "arrivals while crashed",
                fn=lambda: self.packets_dropped_dead),
            "responses_discarded": m.counter(
                "responses_discarded", "in-flight work killed by a crash",
                fn=lambda: self.responses_discarded),
        })
        # Finer-grained instruments not part of the public stats() keys.
        m.counter("batch.subops_served",
                  "sub-ops executed out of multi-op frames",
                  fn=lambda: self.batch_subops_served)
        m.counter("tlb.hits", fn=lambda: self.tlb.hits)
        m.counter("tlb.misses", fn=lambda: self.tlb.misses)
        m.counter("pipeline.requests", fn=lambda: self.fast_path.requests)
        m.counter("pipeline.tlb_misses",
                  fn=lambda: self.fast_path.tlb_miss_count)
        m.counter("slowpath.allocs", fn=lambda: self.slow_path.allocs)
        m.counter("slowpath.frees", fn=lambda: self.slow_path.frees)
        m.counter("slowpath.stalled_requests",
                  fn=lambda: self.slow_path.stalled_requests)
        # Allocation-strategy telemetry (repro.alloc).
        m.counter("alloc.slow_crossings",
                  "ARM global-pool touches by the PA strategy",
                  fn=lambda: self.pa_allocator.slow_crossings)
        m.gauge("alloc.fragmentation",
                "strategy-reported external-fragmentation ratio",
                fn=lambda: self.pa_allocator.fragmentation)
        m.gauge("alloc.free_pages", fn=lambda: self.pa_allocator.free_pages)
        m.counter("alloc.va_retries",
                  "failed VA candidates (hash-overflow retries)",
                  fn=lambda: self.va_allocator.total_retries)
        m.gauge("alloc.va_retry_max",
                "worst retries paid by a single successful alloc",
                fn=lambda: max(self.va_allocator.retry_histogram, default=0))
        if self.buffer_bank is not None:
            m.gauge("alloc.arena_buffers",
                    "per-process async buffers created",
                    fn=lambda: self.buffer_bank.created)
            m.counter("alloc.arena_rebalances",
                      fn=lambda: self.buffer_bank.rebalances)
        m.gauge("inflight", "requests in the handler chain",
                fn=lambda: self._inflight)

    def set_tracer(self, tracer: Optional[Tracer]) -> None:
        """Enable/disable span tracing on the board and its sub-paths."""
        self.tracer = tracer
        self.fast_path.tracer = tracer
        self.fast_path.track = self.name
        self.slow_path.tracer = tracer
        self.slow_path.track = self.name

    # -- failure model ------------------------------------------------------------

    def crash(self) -> None:
        """Fail-stop the board, discarding every piece of volatile state.

        Survives: the page table and DRAM contents (durable board memory),
        plus the PA free list (ARM-local DRAM).  Discarded: the TLB, the
        retry-dedup ring, partial multi-fragment writes, fence/drain
        bookkeeping, and all in-flight pipeline work — handlers from the
        old epoch finish silently and their responses are dropped, exactly
        as if the pipeline lost power mid-request.
        """
        if not self.alive:
            raise ValueError(f"{self.name} is already crashed")
        self.alive = False
        self._epoch += 1
        self.crashes += 1
        self.tlb.flush()
        self.retry_buffer.clear()
        self._write_progress.clear()
        self._inflight = 0
        self._fence_barrier = None
        self._drain_events.clear()
        if self.verifier is not None:
            self.verifier.on_board_crash(self)
        if self.tracer is not None:
            self._crash_span = self.tracer.begin("crashed", "fault", self.name)

    def restart(self) -> None:
        """Bring a crashed board back; cold caches re-warm on demand.

        Post-restart requests TLB-miss and walk the preserved page table —
        the transportless design's recovery story: nothing to replay, no
        connection state to rebuild, just cache re-warming.
        """
        if self.alive:
            raise ValueError(f"{self.name} is not crashed")
        self.alive = True
        self.restarts += 1
        if self.verifier is not None:
            self.verifier.on_board_restart(self)
        if self.tracer is not None:
            self.tracer.end(self._crash_span)
            self._crash_span = None

    # -- wiring -------------------------------------------------------------------

    def attach(self, topology) -> None:
        """Connect the board's Ethernet port to the ToR switch."""
        self.topology = topology
        topology.add_node(self.name, self.receive,
                          port_rate_bps=self.params.cboard.port_rate_bps,
                          node_env=self.env)

    # -- network receive (the transportless MN stack) ------------------------------

    def receive(self, packet: Packet) -> None:
        # A crashed board's port is dark: requests die silently here, and
        # the CN's bounded retransmission surfaces RequestFailed.
        if not self.alive:
            self.packets_dropped_dead += 1
            return
        # Thin netstack: integrity check; corrupt packets get an immediate
        # NACK after the netstack delay — a pure-delay path, so it uses a
        # scheduled callback instead of a generator process.
        if packet.corrupt:
            self.env.schedule_callback(
                self._netstack_ns,
                partial(self._send_nack, packet.header, self._epoch))
            return
        # MAT dispatch: which path (or drop) handles this packet.
        path = self.mat.classify(packet.header)
        if path is Path.DROP:
            return
        self.env.process(self._handle(packet, path, self._epoch))

    def _send_nack(self, header: ClioHeader, epoch: Optional[int] = None) -> None:
        if epoch is not None and epoch != self._epoch:
            self.responses_discarded += 1
            return
        self.nacks_sent += 1
        self._send(header.src, header.request_id, PacketType.NACK,
                   ResponseBody(status=Status.OK), epoch=epoch)

    def _handle(self, packet: Packet, path: Path, epoch: int):
        header = packet.header
        tracer = self.tracer
        span = None
        if tracer is not None:
            span = tracer.begin(
                f"mn:{header.packet_type.value}", "cboard", self.name,
                args={"request_id": header.request_id, "src": header.src})
        try:
            # Fence barrier: anything arriving after a fence waits for the
            # drain.  (A crash resets the barrier without firing it, so
            # pre-crash waiters park here forever — their responses are
            # lost anyway.)
            while self._fence_barrier is not None and header.packet_type is not PacketType.FENCE:
                yield self._fence_barrier

            if header.packet_type is PacketType.FENCE:
                yield from self._handle_fence(packet, epoch)
                return

            self._inflight += 1
            try:
                if path is Path.FAST:
                    if header.packet_type is PacketType.READ:
                        yield from self._handle_read(packet, epoch)
                    elif header.packet_type is PacketType.WRITE:
                        yield from self._handle_write(packet, epoch)
                    elif header.packet_type is PacketType.ATOMIC:
                        yield from self._handle_atomic(packet, epoch)
                    elif header.packet_type is PacketType.BATCH:
                        yield from self._handle_batch(packet, epoch)
                elif path is Path.SLOW:
                    if header.packet_type is PacketType.ALLOC:
                        yield from self._handle_alloc(packet, epoch)
                    elif header.packet_type is PacketType.FREE:
                        yield from self._handle_free(packet, epoch)
                elif path is Path.EXTEND:
                    yield from self._handle_offload(packet, epoch)
            finally:
                # A crash zeroed the in-flight count; a pre-crash handler
                # must not decrement the new epoch's bookkeeping on its
                # way out.
                if epoch == self._epoch:
                    self._inflight -= 1
                    if self._inflight == 0:
                        while self._drain_events:
                            self._drain_events.popleft().succeed()
        finally:
            if self.verifier is not None and epoch == self._epoch:
                self.verifier.on_board_request(self)
            if tracer is not None:
                tracer.end(span, discarded=epoch != self._epoch)

    # -- fast path handlers -----------------------------------------------------------

    def _handle_read(self, packet: Packet, epoch: int):
        header = packet.header
        result = yield from self.fast_path.execute(
            header.pid, AccessType.READ, header.va, header.size,
            wire_bytes=packet.wire_bytes)
        if epoch != self._epoch:
            self.responses_discarded += 1
            return
        self.last_breakdown = result.breakdown
        self.requests_served += 1
        if result.status is not Status.OK:
            self._send(header.src, header.request_id, PacketType.RESPONSE,
                       ResponseBody(status=result.status,
                                    breakdown=result.breakdown), epoch=epoch)
            return
        self.bytes_served += header.size
        # Read responses larger than MTU go back as independent fragments.
        fragments = fragment_payload(header.size, self._mtu)
        for index, (offset, size) in enumerate(fragments):
            body = ResponseBody(
                status=Status.OK,
                data=result.data[offset:offset + size],
                breakdown=result.breakdown if index == 0 else None)
            self._send(header.src, header.request_id, PacketType.RESPONSE,
                       body, fragment=index, fragments=len(fragments),
                       payload_bytes=size, total_size=header.size,
                       epoch=epoch)

    def _handle_write(self, packet: Packet, epoch: int):
        header = packet.header
        progress = self._write_progress.get(header.request_id)
        if progress is None:
            progress = _WriteProgress(remaining=header.fragments)
            self._write_progress[header.request_id] = progress

        executed, _cached = self.retry_buffer.check(header.retry_of)
        result = None
        if executed:
            # A retried write whose original already executed must not run
            # again — re-executing could undo a newer write (section 4.5).
            yield self.env.timeout(self._netstack_ns)
        else:
            result = yield from self.fast_path.execute(
                header.pid, AccessType.WRITE, header.va, header.size,
                data=packet.payload, wire_bytes=packet.wire_bytes)
        if epoch != self._epoch:
            # Crash wiped _write_progress; this fragment's work is lost.
            self.responses_discarded += 1
            return
        if result is not None:
            progress.breakdown.merge(result.breakdown)
            if result.status is not Status.OK:
                progress.status = result.status
            else:
                self.bytes_served += header.size

        progress.remaining -= 1
        if progress.remaining > 0:
            return
        # Whole request done: remember it for retry dedup, ack once.
        del self._write_progress[header.request_id]
        self.requests_served += 1
        self.last_breakdown = progress.breakdown
        if progress.status is Status.OK:
            self.retry_buffer.remember(header.request_id)
            if header.retry_of is not None:
                self.retry_buffer.remember(header.retry_of)
        self._send(header.src, header.request_id, PacketType.RESPONSE,
                   ResponseBody(status=progress.status,
                                breakdown=progress.breakdown), epoch=epoch)

    def _handle_batch(self, packet: Packet, epoch: int):
        """Unroll a multi-op frame through the fast path at II=1 per sub-op.

        Each sub-op pays exactly the per-request pipeline cost — one
        ingest slot sized by its own descriptor (+ write payload), one
        TLB/page-table access — and nothing batch-wide can stall the
        whole frame: a rejected sub-op records its status and the next
        sub-op proceeds.  One response acks the frame, carrying the
        per-sub-op status vector and the concatenated read data.
        """
        header = packet.header
        executed, cached = self.retry_buffer.check(header.retry_of)
        if executed and cached is not None:
            # A retried frame containing writes must not re-execute
            # (section 4.5); replay the remembered status vector + data.
            statuses, blob = cached
            self._send_batch_response(header, statuses, blob, epoch)
            return
        subop_header = self.params.network.subop_header_bytes
        # Unroll the frame *pipelined*: every sub-op enters the fast path
        # as its own in-flight request, in frame order.  The pipeline's
        # own bookkeeping serializes them where hardware would — the
        # one-flit-per-cycle ingest (II=1) and the read DMA setup — so a
        # slow sub-op (TLB miss, fault) stalls only itself, never the
        # frame.  Spawn order fixes ingest order, keeping runs
        # deterministic.
        procs = []
        contains_write = False
        for sub in packet.payload:
            if sub.op is PacketType.WRITE:
                contains_write = True
                procs.append(self.env.process(self.fast_path.execute(
                    header.pid, AccessType.WRITE, sub.va, sub.size,
                    data=sub.data, wire_bytes=subop_header + sub.size)))
            else:
                procs.append(self.env.process(self.fast_path.execute(
                    header.pid, AccessType.READ, sub.va, sub.size,
                    wire_bytes=subop_header)))
        results = []
        for proc in procs:
            results.append((yield proc))
        if epoch != self._epoch:
            # Crash mid-frame: the partial response never reaches the wire.
            self.responses_discarded += 1
            return
        statuses = []
        parts = []
        for sub, result in zip(packet.payload, results):
            statuses.append(result.status)
            self.last_breakdown = result.breakdown
            if result.status is Status.OK:
                self.batch_subops_served += 1
                self.bytes_served += sub.size
                if sub.op is PacketType.READ:
                    parts.append(result.data)
        self.requests_served += 1
        statuses = tuple(statuses)
        blob = b"".join(parts)
        if contains_write:
            # Read-only frames are idempotent and re-execute freely on
            # retry; remembering only write-bearing frames keeps the
            # bounded dedup ring small, exactly like single WRITEs.
            self.retry_buffer.remember(header.request_id, (statuses, blob))
            if header.retry_of is not None:
                self.retry_buffer.remember(header.retry_of, (statuses, blob))
        self._send_batch_response(header, statuses, blob, epoch)

    def _send_batch_response(self, header: ClioHeader, statuses, blob: bytes,
                             epoch: int) -> None:
        """Ack a frame: status vector on fragment 0, read data fragmented."""
        fragments = fragment_payload(len(blob), self._mtu)
        count = len(fragments)
        for index, (offset, size) in enumerate(fragments):
            body = ResponseBody(
                status=next((s for s in statuses if s is not Status.OK),
                            Status.OK),
                value=statuses if index == 0 else None,
                data=blob[offset:offset + size])
            self._send(header.src, header.request_id, PacketType.RESPONSE,
                       body, fragment=index, fragments=count,
                       payload_bytes=size, total_size=len(blob), epoch=epoch)

    def _handle_atomic(self, packet: Packet, epoch: int):
        header = packet.header
        op: AtomicOp = packet.payload
        executed, cached = self.retry_buffer.check(header.retry_of)
        if executed:
            self._send(header.src, header.request_id, PacketType.RESPONSE,
                       ResponseBody(status=Status.OK, atomic=cached),
                       epoch=epoch)
            return
        # Pay the fixed pipeline cost (ingest + stages) then translate.
        ingest = self.fast_path.ingest_delay_ns(packet.wire_bytes)
        yield self.env.timeout(ingest + self._pipeline_fixed_ns)
        status, pa = yield from self.fast_path.translate_only(
            header.pid, AccessType.ATOMIC, header.va)
        if epoch != self._epoch:
            self.responses_discarded += 1
            return
        if status is not Status.OK:
            self._send(header.src, header.request_id, PacketType.RESPONSE,
                       ResponseBody(status=status), epoch=epoch)
            return
        result = yield from self.atomic_unit.execute(pa, op)
        if epoch != self._epoch:
            self.responses_discarded += 1
            return
        self.requests_served += 1
        self.retry_buffer.remember(header.request_id, result)
        if header.retry_of is not None:
            self.retry_buffer.remember(header.retry_of, result)
        self._send(header.src, header.request_id, PacketType.RESPONSE,
                   ResponseBody(status=Status.OK, atomic=result), epoch=epoch)

    def _handle_fence(self, packet: Packet, epoch: int):
        header = packet.header
        # Chain behind any fence already draining.
        while self._fence_barrier is not None:
            yield self._fence_barrier
            if epoch != self._epoch:
                self.responses_discarded += 1
                return
        barrier = self.env.event()
        self._fence_barrier = barrier
        while self._inflight > 0:
            drain = self.env.event()
            self._drain_events.append(drain)
            yield drain
            if epoch != self._epoch:
                # Crash reset the barrier; ours must not resurface.
                self.responses_discarded += 1
                return
        self.requests_served += 1
        self._send(header.src, header.request_id, PacketType.RESPONSE,
                   ResponseBody(status=Status.OK), epoch=epoch)
        self._fence_barrier = None
        barrier.succeed()

    # -- slow path handlers ---------------------------------------------------------

    def _dedup_response(self, header: ClioHeader, epoch: int) -> bool:
        """Replay a cached response for a retry of an executed non-
        idempotent request (alloc/free/offload); True when replayed.

        Re-executing these would double-allocate or double-apply side
        effects, so they get the same dedup treatment as writes/atomics.
        """
        executed, cached = self.retry_buffer.check(header.retry_of)
        if executed and isinstance(cached, ResponseBody):
            self._send(header.src, header.request_id, PacketType.RESPONSE,
                       cached, epoch=epoch)
            return True
        return False

    def _remember_response(self, header: ClioHeader,
                           body: ResponseBody) -> None:
        self.retry_buffer.remember(header.request_id, body)
        if header.retry_of is not None:
            self.retry_buffer.remember(header.retry_of, body)

    def _handle_alloc(self, packet: Packet, epoch: int):
        header = packet.header
        if self._dedup_response(header, epoch):
            return
        size, permission, fixed_va = packet.payload
        response = yield from self.slow_path.handle_alloc(
            header.pid, size, permission=permission, fixed_va=fixed_va)
        if epoch != self._epoch:
            # Page-table updates survive the crash (durable state), but the
            # response and the retry-dedup record are lost with the epoch.
            self.responses_discarded += 1
            return
        status = Status.OK if response.ok else Status.INVALID_VA
        self.requests_served += 1
        body = ResponseBody(status=status, value=response)
        self._remember_response(header, body)
        self._send(header.src, header.request_id, PacketType.RESPONSE, body,
                   epoch=epoch)

    def _handle_free(self, packet: Packet, epoch: int):
        header = packet.header
        if self._dedup_response(header, epoch):
            return
        response = yield from self.slow_path.handle_free(header.pid, header.va)
        if epoch != self._epoch:
            self.responses_discarded += 1
            return
        status = Status.OK if response.ok else Status.INVALID_VA
        self.requests_served += 1
        body = ResponseBody(status=status, value=response)
        self._remember_response(header, body)
        self._send(header.src, header.request_id, PacketType.RESPONSE, body,
                   epoch=epoch)

    # -- extend path ---------------------------------------------------------------

    def _handle_offload(self, packet: Packet, epoch: int):
        header = packet.header
        if self._dedup_response(header, epoch):
            return
        name, args = packet.payload
        result = yield from self.extend_path.invoke(name, args,
                                                    caller_pid=header.pid)
        if epoch != self._epoch:
            self.responses_discarded += 1
            return
        self.requests_served += 1
        status = Status.OK if result.ok else Status.INVALID_VA
        body = ResponseBody(status=status, value=result)
        self._remember_response(header, body)
        self._send(header.src, header.request_id, PacketType.RESPONSE, body,
                   epoch=epoch)

    # -- response generation -----------------------------------------------------------

    def _send(self, dst: str, request_id: int, packet_type: PacketType,
              body: ResponseBody, fragment: int = 0, fragments: int = 1,
              payload_bytes: int = 0, total_size: int = 0,
              epoch: Optional[int] = None) -> None:
        if epoch is not None and epoch != self._epoch:
            # Response authored before a crash: the pipeline that produced
            # it lost power, so the packet never makes it to the wire.
            self.responses_discarded += 1
            return
        if self.tracer is not None:
            self.tracer.instant(
                "mn_response", "cboard", self.name,
                args={"request_id": request_id, "type": packet_type.value,
                      "dst": dst})
        if self.topology is None:
            return  # locally-driven board (on-board benchmarks): no network
        header = ClioHeader(
            src=self.name, dst=dst, request_id=request_id,
            packet_type=packet_type, size=payload_bytes,
            total_size=total_size or payload_bytes,
            fragment=fragment, fragments=fragments)
        wire = self.params.network.header_bytes + payload_bytes
        self.topology.send(Packet(header=header, payload=body,
                                  wire_bytes=wire, sent_at=self.env.now))

    # -- direct (on-board) execution for benchmarks -------------------------------------

    def execute_local(self, pid: int, access: AccessType, va: int, size: int,
                      data: Optional[bytes] = None):
        """Process-generator: drive the fast path without the network.

        Used by the on-board traffic generator experiments (Figure 9) and
        by unit tests; semantics identical to the packet path for a
        single-fragment request.
        """
        result = yield from self.fast_path.execute(
            pid, access, va, size, data=data, wire_bytes=size + 64)
        self.last_breakdown = result.breakdown
        return result

    # -- diagnostics ----------------------------------------------------------------------

    @property
    def memory_utilization(self) -> float:
        return self.pa_allocator.utilization

    def stats(self) -> dict:
        """Public counters — a view over the board's registry instruments
        (same keys and values as the historical ad-hoc dict)."""
        return self._stats.snapshot()

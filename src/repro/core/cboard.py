"""CBoard: the complete memory-node device (paper Figure 3).

An incoming packet crosses the thin MN network stack (integrity check +
ack generation only — the MN is "transportless"), then a Match-and-Action
Table routes it:

* **fast path** (ASIC): READ/WRITE/ATOMIC/FENCE — the deterministic
  hardware virtual-memory pipeline in :mod:`repro.core.pipeline`;
* **slow path** (ARM): ALLOC/FREE — metadata operations in
  :mod:`repro.core.slowpath`;
* **extend path** (FPGA/ARM): OFFLOAD — application computation in
  :mod:`repro.core.extend`.

The only two kinds of state the MN keeps beyond the page table are
reproduced here exactly: the bounded retry-dedup ring and the (bounded,
infrequent) synchronization state — fence drain tracking and the single
atomic unit.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Optional

from repro.core.addr import AccessType, PageSpec
from repro.core.extend import ExtendPath
from repro.core.mat import MatchActionTable, Path
from repro.core.memory import DRAM
from repro.core.pa_allocator import AsyncBuffer, PAAllocator
from repro.core.page_table import HashPageTable
from repro.core.pipeline import Breakdown, FastPath, Status
from repro.core.retry_buffer import RetryBuffer
from repro.core.slowpath import SlowPath
from repro.core.sync import AtomicOp, AtomicResult, AtomicUnit
from repro.core.tlb import TLB
from repro.core.va_allocator import VAAllocator
from repro.net.packet import ClioHeader, Packet, PacketType, fragment_payload
from repro.params import ClioParams
from repro.sim import Environment


@dataclass(slots=True)
class ResponseBody:
    """Payload of a RESPONSE packet."""

    status: Status
    data: Optional[bytes] = None          # read data fragment
    value: Any = None                      # alloc VA / offload result
    atomic: Optional[AtomicResult] = None
    breakdown: Optional[Breakdown] = None  # instrumentation (not on wire)


@dataclass(slots=True)
class _WriteProgress:
    """Per-request fragment countdown for multi-packet writes.

    Bounded: entries live only while a request's fragments are in the
    pipeline, and they are dropped as soon as the response is generated.
    """

    remaining: int
    status: Status = Status.OK
    breakdown: Breakdown = field(default_factory=Breakdown)


class CBoard:
    """One memory node: fast + slow + extend paths over on-board DRAM."""

    def __init__(self, env: Environment, params: ClioParams,
                 name: str = "mn0", dram_capacity: Optional[int] = None,
                 page_size: Optional[int] = None):
        self.env = env
        self.params = params
        self.name = name
        cb = params.cboard
        self.page_spec = PageSpec(page_size or cb.default_page_size)
        capacity = dram_capacity or cb.dram_capacity
        physical_pages = capacity // self.page_spec.page_size
        if physical_pages <= 0:
            raise ValueError("DRAM capacity below one page")

        self.dram = DRAM(capacity, cb.dram_access_ns, cb.dram_bandwidth_bps)
        self.page_table = HashPageTable(
            physical_pages, slots_per_bucket=cb.page_table_slots_per_bucket,
            overprovision=cb.page_table_overprovision,
            page_spec=self.page_spec)
        self.tlb = TLB(cb.tlb_entries)
        self.pa_allocator = PAAllocator(physical_pages)
        self.async_buffer = AsyncBuffer(
            env, self.pa_allocator, depth=min(cb.async_buffer_depth,
                                              physical_pages),
            refill_ns=cb.arm_pa_alloc_ns)
        self.async_buffer.prefill()
        self.va_allocator = VAAllocator(self.page_table, self.page_spec)
        self.fast_path = FastPath(env, cb, self.dram, self.page_table,
                                  self.tlb, self.async_buffer, self.page_spec)
        self.slow_path = SlowPath(env, cb, self.va_allocator,
                                  self.pa_allocator, self.tlb, dram=self.dram)
        self.extend_path = ExtendPath(env, cb, self.fast_path, self.slow_path)
        self.atomic_unit = AtomicUnit(env, self.dram)
        self.retry_buffer = RetryBuffer(cb.retry_buffer_bytes)
        self.mat = MatchActionTable()

        self.topology = None
        self._write_progress: dict[int, _WriteProgress] = {}

        # Delay constants, precomputed once (the per-packet int(round())
        # recomputation was measurable on the packet-echo hot path).
        self._netstack_ns = int(round(cb.netstack_cycles * cb.cycle_ns))
        self._pipeline_fixed_ns = cb.pipeline_ns()
        self._mtu = params.network.mtu

        # Fence state: all future requests block until in-flight ones drain.
        self._inflight = 0
        self._fence_barrier = None
        self._drain_events: deque = deque()

        # Counters
        self.requests_served = 0
        self.nacks_sent = 0
        self.bytes_served = 0
        self.last_breakdown: Optional[Breakdown] = None

    # -- wiring -------------------------------------------------------------------

    def attach(self, topology) -> None:
        """Connect the board's Ethernet port to the ToR switch."""
        self.topology = topology
        topology.add_node(self.name, self.receive,
                          port_rate_bps=self.params.cboard.port_rate_bps)

    # -- network receive (the transportless MN stack) ------------------------------

    def receive(self, packet: Packet) -> None:
        # Thin netstack: integrity check; corrupt packets get an immediate
        # NACK after the netstack delay — a pure-delay path, so it uses a
        # scheduled callback instead of a generator process.
        if packet.corrupt:
            self.env.schedule_callback(
                self._netstack_ns, partial(self._send_nack, packet.header))
            return
        # MAT dispatch: which path (or drop) handles this packet.
        path = self.mat.classify(packet.header)
        if path is Path.DROP:
            return
        self.env.process(self._handle(packet, path))

    def _send_nack(self, header: ClioHeader) -> None:
        self.nacks_sent += 1
        self._send(header.src, header.request_id, PacketType.NACK,
                   ResponseBody(status=Status.OK))

    def _handle(self, packet: Packet, path: Path):
        header = packet.header
        # Fence barrier: anything arriving after a fence waits for the drain.
        while self._fence_barrier is not None and header.packet_type is not PacketType.FENCE:
            yield self._fence_barrier

        if header.packet_type is PacketType.FENCE:
            yield from self._handle_fence(packet)
            return

        self._inflight += 1
        try:
            if path is Path.FAST:
                if header.packet_type is PacketType.READ:
                    yield from self._handle_read(packet)
                elif header.packet_type is PacketType.WRITE:
                    yield from self._handle_write(packet)
                elif header.packet_type is PacketType.ATOMIC:
                    yield from self._handle_atomic(packet)
            elif path is Path.SLOW:
                if header.packet_type is PacketType.ALLOC:
                    yield from self._handle_alloc(packet)
                elif header.packet_type is PacketType.FREE:
                    yield from self._handle_free(packet)
            elif path is Path.EXTEND:
                yield from self._handle_offload(packet)
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                while self._drain_events:
                    self._drain_events.popleft().succeed()

    # -- fast path handlers -----------------------------------------------------------

    def _handle_read(self, packet: Packet):
        header = packet.header
        result = yield from self.fast_path.execute(
            header.pid, AccessType.READ, header.va, header.size,
            wire_bytes=packet.wire_bytes)
        self.last_breakdown = result.breakdown
        self.requests_served += 1
        if result.status is not Status.OK:
            self._send(header.src, header.request_id, PacketType.RESPONSE,
                       ResponseBody(status=result.status,
                                    breakdown=result.breakdown))
            return
        self.bytes_served += header.size
        # Read responses larger than MTU go back as independent fragments.
        fragments = fragment_payload(header.size, self._mtu)
        for index, (offset, size) in enumerate(fragments):
            body = ResponseBody(
                status=Status.OK,
                data=result.data[offset:offset + size],
                breakdown=result.breakdown if index == 0 else None)
            self._send(header.src, header.request_id, PacketType.RESPONSE,
                       body, fragment=index, fragments=len(fragments),
                       payload_bytes=size, total_size=header.size)

    def _handle_write(self, packet: Packet):
        header = packet.header
        progress = self._write_progress.get(header.request_id)
        if progress is None:
            progress = _WriteProgress(remaining=header.fragments)
            self._write_progress[header.request_id] = progress

        executed, _cached = self.retry_buffer.check(header.retry_of)
        if executed:
            # A retried write whose original already executed must not run
            # again — re-executing could undo a newer write (section 4.5).
            yield self.env.timeout(self._netstack_ns)
        else:
            result = yield from self.fast_path.execute(
                header.pid, AccessType.WRITE, header.va, header.size,
                data=packet.payload, wire_bytes=packet.wire_bytes)
            progress.breakdown.merge(result.breakdown)
            if result.status is not Status.OK:
                progress.status = result.status
            else:
                self.bytes_served += header.size

        progress.remaining -= 1
        if progress.remaining > 0:
            return
        # Whole request done: remember it for retry dedup, ack once.
        del self._write_progress[header.request_id]
        self.requests_served += 1
        self.last_breakdown = progress.breakdown
        if progress.status is Status.OK:
            self.retry_buffer.remember(header.request_id)
            if header.retry_of is not None:
                self.retry_buffer.remember(header.retry_of)
        self._send(header.src, header.request_id, PacketType.RESPONSE,
                   ResponseBody(status=progress.status,
                                breakdown=progress.breakdown))

    def _handle_atomic(self, packet: Packet):
        header = packet.header
        op: AtomicOp = packet.payload
        executed, cached = self.retry_buffer.check(header.retry_of)
        if executed:
            self._send(header.src, header.request_id, PacketType.RESPONSE,
                       ResponseBody(status=Status.OK, atomic=cached))
            return
        # Pay the fixed pipeline cost (ingest + stages) then translate.
        ingest = self.fast_path.ingest_delay_ns(packet.wire_bytes)
        yield self.env.timeout(ingest + self._pipeline_fixed_ns)
        status, pa = yield from self.fast_path.translate_only(
            header.pid, AccessType.ATOMIC, header.va)
        if status is not Status.OK:
            self._send(header.src, header.request_id, PacketType.RESPONSE,
                       ResponseBody(status=status))
            return
        result = yield from self.atomic_unit.execute(pa, op)
        self.requests_served += 1
        self.retry_buffer.remember(header.request_id, result)
        if header.retry_of is not None:
            self.retry_buffer.remember(header.retry_of, result)
        self._send(header.src, header.request_id, PacketType.RESPONSE,
                   ResponseBody(status=Status.OK, atomic=result))

    def _handle_fence(self, packet: Packet):
        header = packet.header
        # Chain behind any fence already draining.
        while self._fence_barrier is not None:
            yield self._fence_barrier
        barrier = self.env.event()
        self._fence_barrier = barrier
        while self._inflight > 0:
            drain = self.env.event()
            self._drain_events.append(drain)
            yield drain
        self.requests_served += 1
        self._send(header.src, header.request_id, PacketType.RESPONSE,
                   ResponseBody(status=Status.OK))
        self._fence_barrier = None
        barrier.succeed()

    # -- slow path handlers ---------------------------------------------------------

    def _dedup_response(self, header: ClioHeader) -> bool:
        """Replay a cached response for a retry of an executed non-
        idempotent request (alloc/free/offload); True when replayed.

        Re-executing these would double-allocate or double-apply side
        effects, so they get the same dedup treatment as writes/atomics.
        """
        executed, cached = self.retry_buffer.check(header.retry_of)
        if executed and isinstance(cached, ResponseBody):
            self._send(header.src, header.request_id, PacketType.RESPONSE,
                       cached)
            return True
        return False

    def _remember_response(self, header: ClioHeader,
                           body: ResponseBody) -> None:
        self.retry_buffer.remember(header.request_id, body)
        if header.retry_of is not None:
            self.retry_buffer.remember(header.retry_of, body)

    def _handle_alloc(self, packet: Packet):
        header = packet.header
        if self._dedup_response(header):
            return
        size, permission, fixed_va = packet.payload
        response = yield from self.slow_path.handle_alloc(
            header.pid, size, permission=permission, fixed_va=fixed_va)
        status = Status.OK if response.ok else Status.INVALID_VA
        self.requests_served += 1
        body = ResponseBody(status=status, value=response)
        self._remember_response(header, body)
        self._send(header.src, header.request_id, PacketType.RESPONSE, body)

    def _handle_free(self, packet: Packet):
        header = packet.header
        if self._dedup_response(header):
            return
        response = yield from self.slow_path.handle_free(header.pid, header.va)
        status = Status.OK if response.ok else Status.INVALID_VA
        self.requests_served += 1
        body = ResponseBody(status=status, value=response)
        self._remember_response(header, body)
        self._send(header.src, header.request_id, PacketType.RESPONSE, body)

    # -- extend path ---------------------------------------------------------------

    def _handle_offload(self, packet: Packet):
        header = packet.header
        if self._dedup_response(header):
            return
        name, args = packet.payload
        result = yield from self.extend_path.invoke(name, args,
                                                    caller_pid=header.pid)
        self.requests_served += 1
        status = Status.OK if result.ok else Status.INVALID_VA
        body = ResponseBody(status=status, value=result)
        self._remember_response(header, body)
        self._send(header.src, header.request_id, PacketType.RESPONSE, body)

    # -- response generation -----------------------------------------------------------

    def _send(self, dst: str, request_id: int, packet_type: PacketType,
              body: ResponseBody, fragment: int = 0, fragments: int = 1,
              payload_bytes: int = 0, total_size: int = 0) -> None:
        if self.topology is None:
            return  # locally-driven board (on-board benchmarks): no network
        header = ClioHeader(
            src=self.name, dst=dst, request_id=request_id,
            packet_type=packet_type, size=payload_bytes,
            total_size=total_size or payload_bytes,
            fragment=fragment, fragments=fragments)
        wire = self.params.network.header_bytes + payload_bytes
        self.topology.send(Packet(header=header, payload=body,
                                  wire_bytes=wire, sent_at=self.env.now))

    # -- direct (on-board) execution for benchmarks -------------------------------------

    def execute_local(self, pid: int, access: AccessType, va: int, size: int,
                      data: Optional[bytes] = None):
        """Process-generator: drive the fast path without the network.

        Used by the on-board traffic generator experiments (Figure 9) and
        by unit tests; semantics identical to the packet path for a
        single-fragment request.
        """
        result = yield from self.fast_path.execute(
            pid, access, va, size, data=data, wire_bytes=size + 64)
        self.last_breakdown = result.breakdown
        return result

    # -- diagnostics ----------------------------------------------------------------------

    @property
    def memory_utilization(self) -> float:
        return self.pa_allocator.utilization

    def stats(self) -> dict:
        return {
            "requests_served": self.requests_served,
            "bytes_served": self.bytes_served,
            "tlb_hit_rate": self.tlb.hit_rate,
            "page_faults": self.fast_path.faults,
            "nacks_sent": self.nacks_sent,
            "retry_dedups": self.retry_buffer.dedup_hits,
            "memory_utilization": self.memory_utilization,
            "pt_entries": self.page_table.entry_count,
        }

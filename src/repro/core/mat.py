"""The Match-and-Action Table (paper section 3.2, Figure 2).

    "An incoming request arrives at the ASIC and travels through standard
    Ethernet physical and MAC layers and a Match-and-Action-Table (MAT)
    that decides which of the three paths the request should go to based
    on the request type."

The MAT is a small TCAM-style rule table: each rule matches header
fields (request type, optionally PID ranges) and names an action — which
path handles the packet, or drop.  CBoard installs the three default
path rules at boot; operators (or tests) can install additional rules,
e.g. to quarantine a misbehaving PID or steer a custom request type.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.net.packet import ClioHeader, PacketType


class Path(enum.Enum):
    """Where a matched packet goes."""

    FAST = "fast"        # ASIC data pipeline
    SLOW = "slow"        # ARM metadata path
    EXTEND = "extend"    # FPGA/ARM offloads
    DROP = "drop"        # discarded (filtered)


@dataclass(frozen=True)
class MatchRule:
    """One TCAM entry: all specified fields must match.

    ``packet_type`` of None is a wildcard; a PID range of (None, None)
    matches every PID.  Lower ``priority`` wins.
    """

    action: Path
    packet_type: Optional[PacketType] = None
    pid_min: Optional[int] = None
    pid_max: Optional[int] = None
    priority: int = 100

    def matches(self, header: ClioHeader) -> bool:
        if self.packet_type is not None and header.packet_type is not self.packet_type:
            return False
        if self.pid_min is not None and header.pid < self.pid_min:
            return False
        if self.pid_max is not None and header.pid > self.pid_max:
            return False
        return True


#: The boot-time rule set every CBoard installs (paper Figure 2).
DEFAULT_RULES = (
    MatchRule(action=Path.FAST, packet_type=PacketType.READ),
    MatchRule(action=Path.FAST, packet_type=PacketType.WRITE),
    MatchRule(action=Path.FAST, packet_type=PacketType.ATOMIC),
    MatchRule(action=Path.FAST, packet_type=PacketType.FENCE),
    MatchRule(action=Path.FAST, packet_type=PacketType.BATCH),
    MatchRule(action=Path.SLOW, packet_type=PacketType.ALLOC),
    MatchRule(action=Path.SLOW, packet_type=PacketType.FREE),
    MatchRule(action=Path.EXTEND, packet_type=PacketType.OFFLOAD),
)


class MatchActionTable:
    """Priority-ordered rule table with bounded capacity (it is on-chip)."""

    def __init__(self, capacity: int = 64, install_defaults: bool = True):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._rules: list[MatchRule] = []
        self.lookups = 0
        self.drops = 0
        if install_defaults:
            for rule in DEFAULT_RULES:
                self.install(rule)

    def __len__(self) -> int:
        return len(self._rules)

    def install(self, rule: MatchRule) -> None:
        """Add a rule; stable order within equal priorities."""
        if len(self._rules) >= self.capacity:
            raise ValueError(f"MAT full ({self.capacity} rules)")
        self._rules.append(rule)
        self._rules.sort(key=lambda entry: entry.priority)

    def remove(self, rule: MatchRule) -> bool:
        try:
            self._rules.remove(rule)
            return True
        except ValueError:
            return False

    def classify(self, header: ClioHeader) -> Path:
        """First matching rule's action; unmatched packets drop."""
        self.lookups += 1
        for rule in self._rules:
            if rule.matches(header):
                if rule.action is Path.DROP:
                    self.drops += 1
                return rule.action
        self.drops += 1
        return Path.DROP

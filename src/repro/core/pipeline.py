"""The deterministic fast-path pipeline (paper sections 4.1-4.3).

Design properties the model reproduces exactly:

* **Smooth**: the pipeline ingests one 512-bit flit per cycle (II = 1), so
  back-to-back requests serialize only on flit ingestion — that is what
  lets the board sustain >100 Gbps (Figure 9).
* **Deterministic**: a request spends a *fixed* number of cycles in the
  MAT/decode/translate/permission/response stages; the only variable terms
  are one DRAM bucket fetch on a TLB miss and the bounded 3-cycle fault
  path — which is why the tail stays at 3.2 us (Figure 7).
* **Bounded fault handling**: a fault pops a pre-reserved physical page
  from the async buffer and then runs three tasks in parallel (PT
  write-back, TLB insert, continue the faulting access), so only the pop
  sits on the latency path.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Optional

from repro.core.addr import AccessType, PageSpec, Permission
from repro.core.memory import DRAM
from repro.core.page_table import HashPageTable
from repro.core.pa_allocator import AsyncBuffer
from repro.core.tlb import TLB
from repro.params import CBoardParams

#: PT bucket size fetched on a TLB miss (K slots x 16 B).
BUCKET_FETCH_BYTES = 64


class Status(enum.Enum):
    """Outcome of a fast-path request."""

    OK = "ok"
    INVALID_VA = "invalid_va"        # no PTE: unallocated address
    PERMISSION = "permission"        # R/W permission check failed
    OOM = "oom"                      # fault with no free physical page


@dataclass(slots=True)
class Breakdown:
    """Per-request latency decomposition (drives Figure 14)."""

    ingest_ns: int = 0        # flit serialization into the pipeline
    pipeline_ns: int = 0      # fixed-cycle stages
    tlb_miss_ns: int = 0      # PT bucket fetches
    fault_ns: int = 0         # bounded fault path (incl. async-buffer pop)
    dram_ns: int = 0          # data access
    total_ns: int = 0

    def merge(self, other: "Breakdown") -> None:
        self.ingest_ns += other.ingest_ns
        self.pipeline_ns += other.pipeline_ns
        self.tlb_miss_ns += other.tlb_miss_ns
        self.fault_ns += other.fault_ns
        self.dram_ns += other.dram_ns
        self.total_ns += other.total_ns


@dataclass(slots=True)
class FastPathResult:
    status: Status
    data: Optional[bytes] = None
    faulted: bool = False
    tlb_missed: bool = False
    breakdown: Breakdown = field(default_factory=Breakdown)


class FastPath:
    """Hardware virtual-memory pipeline: translate, check, fault, access."""

    def __init__(self, env, params: CBoardParams, dram: DRAM,
                 page_table: HashPageTable, tlb: TLB,
                 async_buffer: AsyncBuffer, page_spec: PageSpec):
        self.env = env
        self.params = params
        self.dram = dram
        self.page_table = page_table
        self.tlb = tlb
        self.async_buffer = async_buffer
        self.page_spec = page_spec
        # Arena mode routes faults to per-process buffers; None (default)
        # keeps every fault on the shared async buffer, bit-identically.
        self.buffer_bank = None
        # Delay constants, precomputed once: the per-request int(round())
        # arithmetic showed up in profiles of the packet-echo hot path.
        self._flit_bytes = params.datapath_bits // 8
        self._pipeline_fixed_ns = params.pipeline_ns()
        self._fault_fixed_ns = int(round(params.fault_cycles
                                         * params.cycle_ns))
        self._ingest_ns_cache: dict[int, int] = {}
        self._pipe_free_at = 0   # II=1 ingestion bookkeeping
        # The board's read path goes through a non-pipelined DMA IP: each
        # read pays a serialized setup (the paper's Figure 9 bottleneck —
        # "read throughput is lower than write when request size is
        # smaller").  Writes are posted and don't serialize here.
        self._read_dma_free_at = 0
        # Per-page fault serialization: concurrent requests faulting on
        # the same page must resolve to ONE physical page (the hardware
        # handler admits one fault per page; followers reuse its PTE).
        self._pending_faults: dict[tuple[int, int], object] = {}
        self.requests = 0
        self.faults = 0
        self.tlb_miss_count = 0
        # Background PT write-backs issued by the fault handler (parallel
        # task 1 of 3); tracked only for accounting.
        self.background_pt_writes = 0
        # Span tracing: None unless the owning board enables it.  Hooks
        # only *record* — no events, no RNG — so traced and untraced runs
        # share every simulated timestamp.
        self.tracer = None
        self.track = "fastpath"

    # -- ingestion (smoothness) ------------------------------------------------

    def ingest_delay_ns(self, wire_bytes: int) -> int:
        """Time until this request's last flit has entered the pipeline.

        Models the one-flit-per-cycle intake: a request of N flits holds
        the intake for N cycles, and a request arriving while the intake
        is busy waits for the remainder.
        """
        busy_ns = self._ingest_ns_cache.get(wire_bytes)
        if busy_ns is None:
            flits = max(1, math.ceil(wire_bytes / self._flit_bytes))
            busy_ns = int(round(flits * self.params.cycle_ns))
            self._ingest_ns_cache[wire_bytes] = busy_ns
        start = max(self.env.now, self._pipe_free_at)
        self._pipe_free_at = start + busy_ns
        return (start - self.env.now) + busy_ns

    # -- translation ---------------------------------------------------------------

    def _translate(self, pid: int, vpn: int, access: AccessType,
                   breakdown: Breakdown):
        """Translate one page; yields timing events, returns (status, ppn)."""
        hit = self.tlb.lookup(pid, vpn)
        if hit is not None:
            ppn, permission = hit
            if access.required_permission not in permission:
                return Status.PERMISSION, None
            return Status.OK, ppn

        # TLB miss: exactly one DRAM access fetches the whole bucket.
        self.tlb_miss_count += 1
        fetch_ns = self.dram.access_time_ns(BUCKET_FETCH_BYTES)
        breakdown.tlb_miss_ns += fetch_ns
        yield self.env.timeout(fetch_ns)
        entry = self.page_table.lookup(pid, vpn)
        if entry is None:
            return Status.INVALID_VA, None
        if access.required_permission not in entry.permission:
            return Status.PERMISSION, None

        if not entry.present:
            # Hardware page fault: bounded three-cycle path.
            status, ppn = yield from self._handle_fault(pid, vpn, entry,
                                                        breakdown)
            if status is not Status.OK:
                return status, None
        else:
            ppn = entry.ppn

        self.tlb.insert(pid, vpn, ppn, entry.permission)
        return Status.OK, ppn

    def _stage_span(self, access: AccessType, start: int, status: Status,
                    breakdown: Breakdown) -> None:
        """One complete pipeline-stage span carrying the breakdown args."""
        self.tracer.complete(
            f"fastpath:{access.name.lower()}", "pipeline", self.track,
            start, self.env.now,
            args={"status": status.value,
                  "ingest_ns": breakdown.ingest_ns,
                  "pipeline_ns": breakdown.pipeline_ns,
                  "tlb_miss_ns": breakdown.tlb_miss_ns,
                  "fault_ns": breakdown.fault_ns,
                  "dram_ns": breakdown.dram_ns})

    def _handle_fault(self, pid: int, vpn: int, entry, breakdown: Breakdown):
        start = self.env.now
        key = (pid, vpn)
        pending = self._pending_faults.get(key)
        if pending is not None:
            # Another request is already faulting this page in: wait for
            # its PTE instead of allocating a second physical page.
            yield pending
            breakdown.fault_ns += self.env.now - start
            if entry.present:
                return Status.OK, entry.ppn
            return Status.OOM, None

        done = self.env.event()
        self._pending_faults[key] = done
        try:
            self.faults += 1
            yield self.env.timeout(self._fault_fixed_ns)
            buffer = (self.async_buffer if self.buffer_bank is None
                      else self.buffer_bank.buffer_for(pid))
            if len(buffer) == 0 and buffer.allocator.free_pages == 0:
                if self.buffer_bank is not None:
                    # Pages may sit reserved in sibling arenas' buffers;
                    # migrate one ARM-locally instead of blocking forever.
                    self.buffer_bank.rebalance_into(pid)
                if len(buffer) == 0 and buffer.allocator._reserved == 0:
                    return Status.OOM, None
            ppn = yield buffer.pop()
            self.page_table.set_present(pid, vpn, ppn)
            # Parallel tasks: PT write-back and TLB insert happen off the
            # latency path; only account them.
            self.background_pt_writes += 1
            breakdown.fault_ns += self.env.now - start
            return Status.OK, ppn
        finally:
            del self._pending_faults[key]
            done.succeed()
            if self.tracer is not None:
                self.tracer.complete("page_fault", "pipeline", self.track,
                                     start, self.env.now,
                                     args={"pid": pid, "vpn": vpn})

    # -- data access ------------------------------------------------------------------

    def execute(self, pid: int, access: AccessType, va: int, size: int,
                data: Optional[bytes] = None, wire_bytes: Optional[int] = None,
                serialize_dma: bool = True):
        """Process-generator: run one data request through the pipeline.

        Returns a :class:`FastPathResult`.  ``wire_bytes`` drives ingestion
        serialization (defaults to header+payload size).
        ``serialize_dma=False`` skips the read-response DMA engine — used
        by extend-path offloads, whose reads stay on-board and go through
        the memory controller's regular burst interface instead.
        """
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        if access is AccessType.WRITE:
            if data is None or len(data) != size:
                raise ValueError("write needs data of exactly `size` bytes")
        self.requests += 1
        breakdown = Breakdown()
        start = self.env.now

        # Ingest + fixed stages are back-to-back pure delays with no state
        # change in between: charge them as one event.
        ingest = self.ingest_delay_ns(wire_bytes if wire_bytes is not None
                                      else size + 64)
        breakdown.ingest_ns = ingest
        fixed_ns = self._pipeline_fixed_ns
        breakdown.pipeline_ns = fixed_ns
        yield self.env.timeout(ingest + fixed_ns)

        tlb_misses_before = self.tlb_miss_count
        faults_before = self.faults

        # Translate every page the access touches and collect PA extents.
        extents: list[tuple[int, int, int]] = []  # (pa, offset_in_request, len)
        offset = 0
        while offset < size:
            addr = va + offset
            vpn = self.page_spec.page_number(addr)
            page_off = self.page_spec.page_offset(addr)
            chunk = min(size - offset, self.page_spec.page_size - page_off)
            status, ppn = yield from self._translate(pid, vpn, access, breakdown)
            if status is not Status.OK:
                breakdown.total_ns = self.env.now - start
                if self.tracer is not None:
                    self._stage_span(access, start, status, breakdown)
                return FastPathResult(status=status, breakdown=breakdown,
                                      tlb_missed=self.tlb_miss_count > tlb_misses_before,
                                      faulted=self.faults > faults_before)
            extents.append((ppn * self.page_spec.page_size + page_off,
                            offset, chunk))
            offset += chunk

        # The actual memory access.  Reads additionally serialize on the
        # DMA engine's fixed setup; the data stream itself is pipelined.
        dram_ns = self.dram.access_time_ns(size)
        if access is AccessType.READ and serialize_dma:
            dma_start = max(self.env.now, self._read_dma_free_at)
            self._read_dma_free_at = dma_start + self.dram.access_ns
            dram_ns += dma_start - self.env.now
        breakdown.dram_ns = dram_ns
        yield self.env.timeout(dram_ns)
        result_data: Optional[bytes] = None
        if access is AccessType.READ:
            parts = [self.dram.read(pa, length) for pa, _, length in extents]
            result_data = b"".join(parts)
        elif access is AccessType.WRITE:
            for pa, req_off, length in extents:
                self.dram.write(pa, data[req_off:req_off + length])

        breakdown.total_ns = self.env.now - start
        if self.tracer is not None:
            self._stage_span(access, start, Status.OK, breakdown)
        return FastPathResult(
            status=Status.OK, data=result_data,
            tlb_missed=self.tlb_miss_count > tlb_misses_before,
            faulted=self.faults > faults_before, breakdown=breakdown)

    def translate_only(self, pid: int, access: AccessType, va: int):
        """Translate a single address without a data access (atomics path).

        Returns ``(status, pa)``.
        """
        breakdown = Breakdown()
        vpn = self.page_spec.page_number(va)
        status, ppn = yield from self._translate(pid, vpn, access, breakdown)
        if status is not Status.OK:
            return status, None
        return Status.OK, ppn * self.page_spec.page_size + self.page_spec.page_offset(va)

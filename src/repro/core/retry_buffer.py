"""MN-side retry deduplication buffer (paper section 4.5).

CLib gives every retry a fresh request ID and tags it with the ID of the
failed original.  The MN remembers the IDs of recently executed writes and
atomics (plus atomic results) in a small ring sized ``3 x TIMEOUT x
bandwidth`` (30 KB in the paper's setting): long enough to recognize two
retries of any request, small enough to be one of only two pieces of
state the MN keeps.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Optional

#: Bytes one record occupies: request ID + metadata + room for an atomic result.
RECORD_BYTES = 32


class RetryBuffer:
    """Bounded ring remembering executed write/atomic request IDs."""

    def __init__(self, capacity_bytes: int, record_bytes: int = RECORD_BYTES):
        if capacity_bytes < record_bytes:
            raise ValueError(
                f"capacity {capacity_bytes} below one record ({record_bytes})")
        self.capacity_bytes = capacity_bytes
        self.record_bytes = record_bytes
        self.max_records = capacity_bytes // record_bytes
        self._records: OrderedDict[int, Any] = OrderedDict()
        self.dedup_hits = 0

    def __len__(self) -> int:
        return len(self._records)

    @property
    def bytes_used(self) -> int:
        return len(self._records) * self.record_bytes

    def remember(self, request_id: int, result: Any = None) -> None:
        """Record an executed write/atomic; evicts the oldest when full."""
        if request_id in self._records:
            self._records.move_to_end(request_id)
        self._records[request_id] = result
        while len(self._records) > self.max_records:
            self._records.popitem(last=False)

    def check(self, original_request_id: Optional[int]) -> tuple[bool, Any]:
        """Has the original of this retry already executed?

        Returns ``(already_executed, cached_result)``; a hit means the MN
        must not re-execute (a stale retried write could undo a newer one)
        and should respond with the cached result for atomics.
        """
        if original_request_id is None:
            return False, None
        if original_request_id in self._records:
            self.dedup_hits += 1
            return True, self._records[original_request_id]
        return False, None

    def clear(self) -> None:
        """Drop every record (board crash: the ring is on-chip SRAM)."""
        self._records.clear()

"""SimBoard: the paper's software CBoard simulator (section 5).

    "To assist Clio users in building their applications, we implemented
    a simple software simulator of CBoard which works with CLib for
    developers to test their code without the need to run an actual
    CBoard."

SimBoard is that artifact inside this reproduction: a drop-in MN that
speaks the same packet protocol as :class:`repro.core.cboard.CBoard` —
same RAS semantics, permissions, fences, atomics, retry dedup, offloads —
but implemented as plain software maps with a single flat service delay.
Use it when a test needs Clio *semantics* without Clio *timing* (it runs
with far fewer simulation events than the full board).

Differences from CBoard, by design:

* no pipeline/TLB/fault timing — every request costs ``service_ns``;
* no physical page management — memory is allocated per page on first
  touch and cannot run out before host memory does;
* no slow-path/fast-path split — everything is one software path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.addr import AccessType, PageSpec, Permission
from repro.core.cboard import ResponseBody
from repro.core.extend import ExtendPath
from repro.core.pipeline import Status
from repro.core.retry_buffer import RetryBuffer
from repro.core.sync import AtomicOp, AtomicResult, ATOMIC_WIDTH
from repro.net.packet import ClioHeader, Packet, PacketType, fragment_payload
from repro.params import ClioParams
from repro.sim import Environment


@dataclass
class _SimAllocation:
    va: int
    size: int
    permission: Permission


@dataclass
class _SimSpace:
    """One process's RAS: allocations plus page contents."""

    allocations: list[_SimAllocation] = field(default_factory=list)
    pages: dict[int, bytearray] = field(default_factory=dict)
    next_va: int = 1 << 22


class SimBoard:
    """A software stand-in for CBoard with identical request semantics."""

    PAGE = 4 << 20

    def __init__(self, env: Environment, params: ClioParams,
                 name: str = "mn0", service_ns: int = 500):
        if service_ns < 0:
            raise ValueError(f"service_ns must be non-negative, got {service_ns}")
        self.env = env
        self.params = params
        self.name = name
        self.service_ns = service_ns
        self.page_spec = PageSpec(self.PAGE)
        self._spaces: dict[int, _SimSpace] = {}
        self.retry_buffer = RetryBuffer(params.cboard.retry_buffer_bytes)
        self.topology = None
        self.requests_served = 0
        self._write_progress: dict[int, int] = {}
        self._offloads: dict[str, Any] = {}

    # -- wiring ----------------------------------------------------------------------

    def attach(self, topology) -> None:
        self.topology = topology
        topology.add_node(self.name, self.receive,
                          port_rate_bps=self.params.cboard.port_rate_bps,
                          node_env=self.env)

    # -- address space helpers ----------------------------------------------------------

    def _space(self, pid: int) -> _SimSpace:
        return self._spaces.setdefault(pid, _SimSpace())

    def _find_allocation(self, pid: int, va: int,
                         size: int) -> Optional[_SimAllocation]:
        for allocation in self._space(pid).allocations:
            if allocation.va <= va and va + size <= allocation.va + allocation.size:
                return allocation
        return None

    def _read_bytes(self, pid: int, va: int, size: int) -> bytes:
        space = self._space(pid)
        out = bytearray()
        position = va
        remaining = size
        while remaining > 0:
            page = position // self.PAGE
            offset = position % self.PAGE
            take = min(remaining, self.PAGE - offset)
            content = space.pages.get(page)
            if content is None:
                out += bytes(take)
            else:
                out += content[offset:offset + take]
            position += take
            remaining -= take
        return bytes(out)

    def _write_bytes(self, pid: int, va: int, data: bytes) -> None:
        space = self._space(pid)
        position = va
        offset = 0
        while offset < len(data):
            page = position // self.PAGE
            page_offset = position % self.PAGE
            take = min(len(data) - offset, self.PAGE - page_offset)
            content = space.pages.get(page)
            if content is None:
                content = bytearray(self.PAGE)
                space.pages[page] = content
            content[page_offset:page_offset + take] = \
                data[offset:offset + take]
            position += take
            offset += take

    # -- request handling --------------------------------------------------------------------

    def receive(self, packet: Packet) -> None:
        self.env.process(self._handle(packet))

    def _handle(self, packet: Packet):
        header = packet.header
        yield self.env.timeout(self.service_ns)
        if packet.corrupt:
            self._send(header.src, header.request_id, PacketType.NACK,
                       ResponseBody(status=Status.OK))
            return
        handler = {
            PacketType.READ: self._do_read,
            PacketType.WRITE: self._do_write,
            PacketType.ATOMIC: self._do_atomic,
            PacketType.FENCE: self._do_fence,
            PacketType.ALLOC: self._do_alloc,
            PacketType.FREE: self._do_free,
            PacketType.OFFLOAD: self._do_offload,
        }.get(header.packet_type)
        if handler is not None:
            handler(packet)

    def _check_access(self, header: ClioHeader,
                      access: AccessType) -> Optional[Status]:
        allocation = self._find_allocation(header.pid, header.va, header.size)
        if allocation is None:
            return Status.INVALID_VA
        if access.required_permission not in allocation.permission:
            return Status.PERMISSION
        return None

    def _do_read(self, packet: Packet) -> None:
        header = packet.header
        error = self._check_access(header, AccessType.READ)
        self.requests_served += 1
        if error is not None:
            self._send(header.src, header.request_id, PacketType.RESPONSE,
                       ResponseBody(status=error))
            return
        data = self._read_bytes(header.pid, header.va, header.size)
        mtu = self.params.network.mtu
        fragments = fragment_payload(header.size, mtu)
        for index, (offset, size) in enumerate(fragments):
            self._send(header.src, header.request_id, PacketType.RESPONSE,
                       ResponseBody(status=Status.OK,
                                    data=data[offset:offset + size]),
                       fragment=index, fragments=len(fragments),
                       payload_bytes=size)

    def _do_write(self, packet: Packet) -> None:
        header = packet.header
        remaining = self._write_progress.get(header.request_id,
                                             header.fragments)
        executed, _ = self.retry_buffer.check(header.retry_of)
        status = Status.OK
        if not executed:
            error = self._check_access(header, AccessType.WRITE)
            if error is not None:
                status = error
            else:
                self._write_bytes(header.pid, header.va, packet.payload)
        remaining -= 1
        if remaining > 0:
            self._write_progress[header.request_id] = remaining
            return
        self._write_progress.pop(header.request_id, None)
        self.requests_served += 1
        if status is Status.OK:
            self.retry_buffer.remember(header.request_id)
            if header.retry_of is not None:
                self.retry_buffer.remember(header.retry_of)
        self._send(header.src, header.request_id, PacketType.RESPONSE,
                   ResponseBody(status=status))

    def _do_atomic(self, packet: Packet) -> None:
        header = packet.header
        op: AtomicOp = packet.payload
        executed, cached = self.retry_buffer.check(header.retry_of)
        if executed:
            self._send(header.src, header.request_id, PacketType.RESPONSE,
                       ResponseBody(status=Status.OK, atomic=cached))
            return
        allocation = self._find_allocation(header.pid, header.va,
                                           ATOMIC_WIDTH)
        if allocation is None:
            self._send(header.src, header.request_id, PacketType.RESPONSE,
                       ResponseBody(status=Status.INVALID_VA))
            return
        old = int.from_bytes(
            self._read_bytes(header.pid, header.va, ATOMIC_WIDTH), "little")
        from repro.core.sync import AtomicUnit
        new, success = AtomicUnit._apply(old, op)
        if new is not None:
            self._write_bytes(header.pid, header.va,
                              new.to_bytes(ATOMIC_WIDTH, "little"))
        result = AtomicResult(old_value=old, success=success)
        self.requests_served += 1
        self.retry_buffer.remember(header.request_id, result)
        if header.retry_of is not None:
            self.retry_buffer.remember(header.retry_of, result)
        self._send(header.src, header.request_id, PacketType.RESPONSE,
                   ResponseBody(status=Status.OK, atomic=result))

    def _do_fence(self, packet: Packet) -> None:
        header = packet.header
        # Software board processes requests in arrival order already.
        self.requests_served += 1
        self._send(header.src, header.request_id, PacketType.RESPONSE,
                   ResponseBody(status=Status.OK))

    def _do_alloc(self, packet: Packet) -> None:
        header = packet.header
        size, permission, fixed_va = packet.payload
        space = self._space(header.pid)
        aligned = self.page_spec.round_up(size)
        va = fixed_va if fixed_va is not None else space.next_va
        if fixed_va is None:
            space.next_va += aligned
        space.allocations.append(
            _SimAllocation(va=va, size=aligned, permission=permission))
        self.requests_served += 1
        from repro.core.slowpath import AllocResponse
        self._send(header.src, header.request_id, PacketType.RESPONSE,
                   ResponseBody(status=Status.OK,
                                value=AllocResponse(ok=True, va=va,
                                                    size=aligned)))

    def _do_free(self, packet: Packet) -> None:
        header = packet.header
        space = self._space(header.pid)
        from repro.core.slowpath import FreeResponse
        for allocation in space.allocations:
            if allocation.va == header.va:
                space.allocations.remove(allocation)
                first = allocation.va // self.PAGE
                count = allocation.size // self.PAGE
                for page in range(first, first + count):
                    space.pages.pop(page, None)
                self.requests_served += 1
                self._send(header.src, header.request_id,
                           PacketType.RESPONSE,
                           ResponseBody(status=Status.OK,
                                        value=FreeResponse(
                                            ok=True, freed_pages=count)))
                return
        self.requests_served += 1
        self._send(header.src, header.request_id, PacketType.RESPONSE,
                   ResponseBody(status=Status.INVALID_VA,
                                value=FreeResponse(ok=False,
                                                   error="unknown va")))

    def _do_offload(self, packet: Packet) -> None:
        # SimBoard runs offloads as plain host callables (no timing).
        header = packet.header
        name, args = packet.payload
        from repro.core.extend import OffloadResult
        handler = self._offloads.get(name)
        if handler is None:
            body = ResponseBody(status=Status.INVALID_VA,
                                value=OffloadResult(
                                    ok=False, error=f"unknown offload {name!r}"))
        else:
            value = handler(self, header.pid, args)
            body = ResponseBody(status=Status.OK,
                                value=OffloadResult(ok=True, value=value))
        self.requests_served += 1
        self._send(header.src, header.request_id, PacketType.RESPONSE, body)

    def register_offload(self, name: str, handler) -> None:
        """Register ``handler(board, caller_pid, args) -> value``."""
        if name in self._offloads:
            raise ValueError(f"offload {name!r} already registered")
        self._offloads[name] = handler

    # -- response plumbing --------------------------------------------------------------------

    def _send(self, dst: str, request_id: int, packet_type: PacketType,
              body: ResponseBody, fragment: int = 0, fragments: int = 1,
              payload_bytes: int = 0) -> None:
        if self.topology is None:
            return
        header = ClioHeader(src=self.name, dst=dst, request_id=request_id,
                            packet_type=packet_type, size=payload_bytes,
                            total_size=payload_bytes, fragment=fragment,
                            fragments=fragments)
        wire = self.params.network.header_bytes + payload_bytes
        self.topology.send(Packet(header=header, payload=body,
                                  wire_bytes=wire, sent_at=self.env.now))

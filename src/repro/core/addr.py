"""Address-space types and page arithmetic.

Clio gives each application process a *remote virtual address space* (RAS)
identified by a global PID.  Allocation and translation happen at page
granularity (configurable size, 4 MB huge pages by default), while reads
and writes are byte-granular.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

KB = 1 << 10
MB = 1 << 20

#: Page sizes CBoard supports (the paper: "a configurable set of page sizes").
PAGE_SIZES = (4 * KB, 64 * KB, 2 * MB, 4 * MB, 16 * MB)


class Permission(enum.Flag):
    """Per-allocation access permissions, checked in the fast path."""

    NONE = 0
    READ = enum.auto()
    WRITE = enum.auto()
    READ_WRITE = READ | WRITE


class AccessType(enum.Enum):
    """What a data-path request wants to do with memory."""

    READ = "read"
    WRITE = "write"
    ATOMIC = "atomic"

    @property
    def required_permission(self) -> Permission:
        if self is AccessType.READ:
            return Permission.READ
        return Permission.WRITE


class ProtectionError(Exception):
    """Raised when a request fails the fast path's permission check."""


@dataclass(frozen=True)
class PageSpec:
    """Page arithmetic for one configured page size."""

    page_size: int

    def __post_init__(self) -> None:
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise ValueError(f"page size must be a power of two, got {self.page_size}")

    @property
    def offset_bits(self) -> int:
        return self.page_size.bit_length() - 1

    def page_number(self, addr: int) -> int:
        return addr >> self.offset_bits

    def page_offset(self, addr: int) -> int:
        return addr & (self.page_size - 1)

    def page_base(self, addr: int) -> int:
        return addr & ~(self.page_size - 1)

    def pages_spanned(self, addr: int, size: int) -> range:
        """Page numbers an [addr, addr+size) access touches (size >= 1)."""
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        first = self.page_number(addr)
        last = self.page_number(addr + size - 1)
        return range(first, last + 1)

    def round_up(self, size: int) -> int:
        """Smallest multiple of the page size >= size."""
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        return (size + self.page_size - 1) & ~(self.page_size - 1)

    def page_count(self, size: int) -> int:
        return self.round_up(size) // self.page_size


def jenkins_mix(key: int) -> int:
    """A 64-bit avalanche mix (splitmix64 finalizer).

    Stands in for the Jenkins hash the paper cites: cheap in hardware, very
    low collision rate, and fully deterministic for reproducible runs.
    """
    key &= (1 << 64) - 1
    key = (key ^ (key >> 30)) * 0xBF58476D1CE4E5B9 & ((1 << 64) - 1)
    key = (key ^ (key >> 27)) * 0x94D049BB133111EB & ((1 << 64) - 1)
    return key ^ (key >> 31)


def pte_hash(pid: int, vpn: int, num_buckets: int) -> int:
    """Bucket index for a (PID, virtual page number) pair."""
    if num_buckets <= 0:
        raise ValueError(f"num_buckets must be positive, got {num_buckets}")
    return jenkins_mix((pid << 40) ^ vpn) % num_buckets

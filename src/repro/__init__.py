"""Clio: a hardware-software co-designed disaggregated memory system.

Simulation-based reproduction of Guo, Shan, Luo, Huang, Zhang (ASPLOS
2022).  The package models the complete system — the CBoard memory node
(hardware virtual memory, deterministic fast path, ARM slow path, extend
path), the CN-side CLib (ordering, retry, congestion control), the
Ethernet fabric, and the paper's baselines (RDMA, LegoOS, Clover, HERD)
— as a deterministic discrete-event simulation.

Quickstart::

    from repro import ClioCluster

    cluster = ClioCluster()
    thread = cluster.cn(0).process("mn0").thread()

    def app():
        va = yield from thread.ralloc(4096)
        yield from thread.rwrite(va, b"hello, disaggregated world")
        data = yield from thread.rread(va, 26)
        assert data == b"hello, disaggregated world"

    cluster.run(until=cluster.env.process(app()))
"""

from repro.clib import AsyncHandle, ClioProcess, ClioThread, ComputeNode, RemoteAccessError
from repro.cluster import ClioCluster
from repro.core import CBoard
from repro.core.addr import Permission
from repro.params import ClioParams

__version__ = "1.0.0"

__all__ = [
    "AsyncHandle",
    "CBoard",
    "ClioCluster",
    "ClioParams",
    "ClioProcess",
    "ClioThread",
    "ComputeNode",
    "Permission",
    "RemoteAccessError",
    "__version__",
]

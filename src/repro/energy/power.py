"""Energy accounting for workload runs (paper Figure 18).

The paper's method: collect total busy cycles of each active component
(CPU core, ARM, FPGA) over the run, multiply by the per-unit Watts, omit
DRAM and NIC energy.  Energy therefore reflects both per-op efficiency
*and* total runtime — which is how HERD-BF ends up worst despite its
low-power ARM (slow ops -> long runtime -> more joules).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.params import EnergyParams, SEC


@dataclass
class EnergyAccount:
    """Busy-time ledger of one system over one workload run."""

    name: str
    mn_cpu_busy_ns: int = 0        # host Xeon cores at the MN
    mn_arm_busy_ns: int = 0        # ARM cores (CBoard slow path / BlueField)
    mn_fpga_busy_ns: int = 0       # CBoard FPGA active time
    cn_busy_ns: int = 0            # CN library/management cycles
    runtime_ns: int = 0

    def merge(self, other: "EnergyAccount") -> None:
        self.mn_cpu_busy_ns += other.mn_cpu_busy_ns
        self.mn_arm_busy_ns += other.mn_arm_busy_ns
        self.mn_fpga_busy_ns += other.mn_fpga_busy_ns
        self.cn_busy_ns += other.cn_busy_ns
        self.runtime_ns = max(self.runtime_ns, other.runtime_ns)


@dataclass
class EnergyReport:
    """Joules per component plus the MN/CN split Figure 18 plots."""

    name: str
    mn_joules: float
    cn_joules: float

    @property
    def total_joules(self) -> float:
        return self.mn_joules + self.cn_joules


def energy_of(account: EnergyAccount, params: EnergyParams) -> EnergyReport:
    """Convert a busy-time ledger into joules."""
    mn = (account.mn_cpu_busy_ns / SEC * params.xeon_core_watt
          + account.mn_arm_busy_ns / SEC * params.arm_core_watt
          + account.mn_fpga_busy_ns / SEC * params.fpga_watt)
    cn = account.cn_busy_ns / SEC * params.cn_library_watt
    return EnergyReport(name=account.name, mn_joules=mn, cn_joules=cn)


@dataclass(frozen=True)
class SystemPowerProfile:
    """Active power draw of one system while a workload runs.

    The paper's Figure 18 method multiplies active power by total
    runtime: RPC servers busy-poll (their cores draw full power for the
    whole run), the FPGA fabric is always on, and CN client threads spin
    on completions.  This is why HERD-BF — low-power ARM but the slowest
    runtime — consumes the *most* energy.
    """

    name: str
    mn_watts: float
    cn_watts: float

    def energy(self, runtime_ns: int) -> EnergyReport:
        seconds = runtime_ns / SEC
        return EnergyReport(name=self.name,
                            mn_joules=self.mn_watts * seconds,
                            cn_joules=self.cn_watts * seconds)


def default_profiles(params: EnergyParams,
                     cn_threads: int = 1,
                     herd_server_cores: int = 4,
                     bluefield_cores: int = 8) -> dict[str, SystemPowerProfile]:
    """The Figure 18 contenders' power profiles."""
    cn = cn_threads * params.cn_library_watt
    return {
        "Clio": SystemPowerProfile(
            "Clio", mn_watts=params.fpga_watt + params.arm_core_watt,
            cn_watts=cn),
        "Clover": SystemPowerProfile(
            # Passive MN: zero processing watts at the memory side, but
            # the CN burns extra management cycles (modeled as +50% CN
            # power: the client cores do the MN's job too).
            "Clover", mn_watts=0.0, cn_watts=cn * 1.5),
        "HERD": SystemPowerProfile(
            "HERD", mn_watts=herd_server_cores * params.xeon_core_watt,
            cn_watts=cn),
        "HERD-BF": SystemPowerProfile(
            "HERD-BF",
            mn_watts=(bluefield_cores * params.arm_core_watt
                      + params.bluefield_watt),
            cn_watts=cn),
    }

"""CapEx and power comparison: server-based MN versus CBoard (section 7.3).

The paper estimates, from market prices, that a server-based MN hosting
1 TB of DRAM costs 1.1-1.5x and draws 1.9-2.7x the power of a CBoard;
with Optane DIMMs the gap grows to 1.4-2.5x cost and 5.1-8.6x power.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.params import EnergyParams

GB = 1 << 30


class MemoryMedia(enum.Enum):
    DRAM = "dram"
    OPTANE = "optane"


@dataclass(frozen=True)
class MNCost:
    """Cost and wall power of one memory-node build."""

    kind: str
    capex_usd: float
    power_watt: float


@dataclass(frozen=True)
class CapExComparison:
    server: MNCost
    cboard: MNCost

    @property
    def cost_ratio(self) -> float:
        return self.server.capex_usd / self.cboard.capex_usd

    @property
    def power_ratio(self) -> float:
        return self.server.power_watt / self.cboard.power_watt


def _media_cost_and_power(capacity_bytes: int, media: MemoryMedia,
                          params: EnergyParams,
                          server_managed: bool) -> tuple[float, float]:
    gb = capacity_bytes / GB
    if media is MemoryMedia.DRAM:
        cost = gb * params.dram_cost_per_gb
        power = (gb / 64) * params.dram_watt_per_64gb
    else:
        cost = gb * params.optane_cost_per_gb
        dimms = max(1, int(gb / 128))
        # Host-attached Optane keeps the DIMMs (and the host memory
        # subsystem) in full-power mode; a CBoard drives them directly in
        # the low-power profile — the source of the paper's 5.1-8.6x gap.
        per_dimm = (params.optane_watt_per_dimm if server_managed
                    else params.optane_lowpower_watt_per_dimm)
        power = dimms * per_dimm
    return cost, power


def compare_mn_options(capacity_bytes: int = 1 << 40,
                       media: MemoryMedia = MemoryMedia.DRAM,
                       params: EnergyParams | None = None) -> CapExComparison:
    """Build the paper's server-vs-CBoard cost/power comparison."""
    params = params or EnergyParams()
    media_cost, media_power = _media_cost_and_power(
        capacity_bytes, media, params, server_managed=True)
    server = MNCost(kind=f"server+{media.value}",
                    capex_usd=params.server_base_cost + media_cost,
                    power_watt=params.server_idle_watt + media_power)
    cb_cost, cb_power = _media_cost_and_power(
        capacity_bytes, media, params, server_managed=False)
    cboard = MNCost(kind=f"cboard+{media.value}",
                    capex_usd=params.cboard_cost + cb_cost,
                    power_watt=params.cboard_idle_watt + cb_power)
    return CapExComparison(server=server, cboard=cboard)

"""Energy, CapEx, and FPGA-utilization models (paper section 7.3)."""

from repro.energy.capex import CapExComparison, MemoryMedia, compare_mn_options
from repro.energy.fpga_util import FPGA_UTILIZATION, FPGAUtilization
from repro.energy.power import (
    EnergyAccount,
    EnergyReport,
    SystemPowerProfile,
    default_profiles,
    energy_of,
)

__all__ = [
    "CapExComparison",
    "EnergyAccount",
    "EnergyReport",
    "FPGA_UTILIZATION",
    "FPGAUtilization",
    "MemoryMedia",
    "SystemPowerProfile",
    "compare_mn_options",
    "default_profiles",
    "energy_of",
]

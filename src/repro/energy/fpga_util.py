"""FPGA resource-utilization accounting (paper Figure 19).

The paper reports post-synthesis utilization of the ZCU106 (504 K LUTs,
4.75 MB BRAM) for Clio and two prior hardware network stacks.  These are
static synthesis results, not runtime quantities, so the reproduction
carries them as a structured dataset with derived checks (component sums,
the >2x headroom claim) rather than re-deriving them from RTL.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FPGAUtilization:
    """One row of Figure 19: fraction of LUTs (logic) and BRAM (memory)."""

    system: str
    logic_pct: float
    memory_pct: float

    def __post_init__(self) -> None:
        for value in (self.logic_pct, self.memory_pct):
            if not 0.0 <= value <= 100.0:
                raise ValueError(f"utilization {value} outside [0, 100]")


#: Figure 19's table. Clio's total includes vendor IPs (PHY/MAC/DDR4/
#: interconnect); VirtMem/NetStack/Go-Back-N are Clio-authored components.
FPGA_UTILIZATION = (
    FPGAUtilization("StRoM-RoCEv2", logic_pct=39.0, memory_pct=76.0),
    FPGAUtilization("Tonic-SACK", logic_pct=40.0, memory_pct=48.0),
    FPGAUtilization("Clio (Total)", logic_pct=31.0, memory_pct=31.0),
    FPGAUtilization("Clio VirtMem", logic_pct=3.0, memory_pct=5.5),
    FPGAUtilization("Clio NetStack", logic_pct=1.7, memory_pct=2.3),
    FPGAUtilization("Clio Go-Back-N", logic_pct=2.6, memory_pct=5.8),
)

#: ZCU106 device capacity backing the percentages.
ZCU106_LUTS = 504_000
ZCU106_BRAM_BYTES = int(4.75 * (1 << 20))


def clio_components() -> list[FPGAUtilization]:
    return [row for row in FPGA_UTILIZATION if row.system.startswith("Clio ")
            and "Total" not in row.system]


def clio_total() -> FPGAUtilization:
    return next(row for row in FPGA_UTILIZATION if "Total" in row.system)


def offload_headroom_pct() -> float:
    """Logic fraction left for application offloads after Clio's total."""
    return 100.0 - clio_total().logic_pct


def onchip_memory_budget_bytes() -> int:
    """On-chip memory Clio's own components use — the paper's 1.5 MB claim
    covers the TLB + bounded buffers the design needs."""
    clio_own = sum(row.memory_pct for row in clio_components())
    return int(ZCU106_BRAM_BYTES * clio_own / 100.0)

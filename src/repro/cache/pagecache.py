"""CN-local hot-page cache: line store, interception, and coherence.

One :class:`PageCache` per ComputeNode.  ``ClioThread`` data ops route
through :meth:`read` / :meth:`write` when caching is enabled; everything
that fits inside one cache line is served locally when possible, with
the line state machine below; larger accesses, atomics, and frees take
guarded bypass paths that keep the cached copies coherent.

Line states (per ``(mn, pid, line_va)`` key):

* ``filling``  — placeholder while a fill is in flight; never served,
  never evicted; an invalidation or a local write *poisons* it so the
  arriving data is served once but not installed.
* ``shared``   — clean read-only copy; any number of CNs may hold one.
* ``modified`` — exclusive dirty copy (write-back only): writes commit
  locally at DRAM speed with **zero network round trips**, the whole
  point of the cache.

Coherence actions arrive as CACHE_INVAL messages from the directory:
``recall`` = flush-if-dirty then drop, ``downgrade`` = flush then keep
a shared clean copy.  Flushes retry unboundedly across board crashes
(their bytes are committed data the MN must eventually hold); a typed
rejection (region freed) abandons the bytes and counts
``flush_failures``.

The shadow-oracle hooks mirror the uncached client exactly, with one
deliberate rule: *flush* writes bypass the oracle — they re-materialize
bytes whose write was already recorded as committed, which is
idempotent.  Hit tokens open at serve time (a ~300ns window), and miss
tokens open only after directory admission, so a fill that waited out a
board crash behind a write transaction cannot trip the oracle's
zero-retry epoch-fence rule.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Optional

from repro.cache.directory import DIRECTORY_NODE, CacheReq
from repro.clib.client import RemoteAccessError
from repro.core.cboard import ResponseBody
from repro.core.pipeline import Status
from repro.net.packet import ClioHeader, Packet, PacketType
from repro.params import CacheParams
from repro.telemetry.metrics import MetricsRegistry, StatsView
from repro.telemetry.spans import Tracer
from repro.transport.clib_transport import RequestFailed

FILLING = "filling"
SHARED = "shared"
MODIFIED = "modified"

#: Sentinel: the fill path asking the read loop to re-examine the line.
_RETRY = object()


class _Line:
    """One cached line plus its local FIFO lock."""

    __slots__ = ("key", "data", "state", "dirty", "fill_event", "poisoned",
                 "ref", "locked", "waiters")

    def __init__(self, key: tuple, fill_event=None):
        self.key = key
        self.data: Optional[bytearray] = None
        self.state = FILLING
        self.dirty = False
        self.fill_event = fill_event
        self.poisoned = False
        self.ref = False              # CLOCK reference bit
        self.locked = False
        self.waiters: deque = deque()


@dataclass(slots=True)
class _Guard:
    """An open range write-transaction (atomics, bypass writes, frees)."""

    txn_id: int
    pid: int
    mn: str
    retries: int


class PageCache:
    """The per-CN cache: local line store + directory client."""

    def __init__(self, node, cacheparams: CacheParams,
                 registry: Optional[MetricsRegistry] = None):
        self.node = node
        self.env = node.env
        self.transport = node.transport
        self.params = node.params
        self.cacheparams = cacheparams
        self.line_bytes = cacheparams.line_bytes
        self.capacity_lines = cacheparams.capacity_lines
        self.policy = cacheparams.policy
        self.eviction = cacheparams.eviction
        self.hit_ns = cacheparams.hit_ns
        self.enabled = True
        self._lines: dict[tuple, _Line] = {}
        self._lru: OrderedDict = OrderedDict()     # resident keys, LRU order
        self._ring: list = []                      # resident keys, CLOCK order
        self._ring_set: set = set()
        self._hand = 0
        self._txn_ids = itertools.count(1)
        self._pending_drops: set = set()
        self._allocs: dict[tuple, int] = {}        # (mn, pid, va) -> size
        self._active_invals: dict[int, int] = {}   # seq -> latest request_id
        self._inval_done: OrderedDict = OrderedDict()
        # Counters.
        self.hits = 0
        self.misses = 0
        self.fills = 0
        self.evictions = 0
        self.invalidations = 0
        self.writebacks = 0
        self.write_hits = 0
        self.write_fills = 0
        self.write_throughs = 0
        self.flush_retries = 0
        self.flush_failures = 0
        self.tracer: Optional[Tracer] = None
        node.transport.cache_listener = self.on_inval
        metrics = (registry if registry is not None
                   else MetricsRegistry()).scope(f"cache.{node.name}")
        self._stats = StatsView({
            "hits": metrics.counter("hits", fn=lambda: self.hits),
            "misses": metrics.counter("misses", fn=lambda: self.misses),
            "fills": metrics.counter(
                "fills", "lines installed from the MN", fn=lambda: self.fills),
            "evictions": metrics.counter(
                "evictions", fn=lambda: self.evictions),
            "invalidations": metrics.counter(
                "invalidations", "line recalls/downgrades applied",
                fn=lambda: self.invalidations),
            "writebacks": metrics.counter(
                "writebacks", "dirty lines flushed to the MN",
                fn=lambda: self.writebacks),
            "write_hits": metrics.counter(
                "write_hits", "writes committed locally (owner hit)",
                fn=lambda: self.write_hits),
            "write_fills": metrics.counter(
                "write_fills", "ownership grants that installed a line",
                fn=lambda: self.write_fills),
            "write_throughs": metrics.counter(
                "write_throughs", fn=lambda: self.write_throughs),
            "flush_retries": metrics.counter(
                "flush_retries", fn=lambda: self.flush_retries),
            "flush_failures": metrics.counter(
                "flush_failures", "dirty lines abandoned (region gone)",
                fn=lambda: self.flush_failures),
        })
        metrics.gauge("hit_rate", "hits / (hits + misses)",
                      fn=lambda: self.hits / max(1, self.hits + self.misses))
        metrics.gauge("lines", "resident lines",
                      fn=lambda: self._resident_count())

    def stats(self) -> dict:
        return self._stats.snapshot()

    # -- geometry ------------------------------------------------------------------

    def cacheable(self, va: int, size: int) -> bool:
        """True when the access fits within a single cache line."""
        return 0 < size and (va % self.line_bytes) + size <= self.line_bytes

    def _key(self, thread, va: int) -> tuple:
        process = thread.process
        return (process.mn, process.pid, va - (va % self.line_bytes))

    def _range_keys(self, mn: str, pid: int, va: int, size: int) -> tuple:
        first = va - (va % self.line_bytes)
        return tuple((mn, pid, line_va)
                     for line_va in range(first, va + size, self.line_bytes))

    # -- allocation tracking (for rfree invalidation) -------------------------------

    def note_alloc(self, mn: str, pid: int, va: int, size: int) -> None:
        self._allocs[(mn, pid, va)] = size

    def allocation_size(self, mn: str, pid: int, va: int) -> int:
        return self._allocs.get((mn, pid, va), 0)

    def forget_alloc(self, mn: str, pid: int, va: int) -> None:
        self._allocs.pop((mn, pid, va), None)

    # -- local line locks (FIFO handoff) -------------------------------------------

    def _lock_line(self, line: _Line):
        if not line.locked:
            line.locked = True
            return
        waiter = self.env.event()
        line.waiters.append(waiter)
        yield waiter                  # woken holding the lock

    def _unlock_line(self, line: _Line) -> None:
        if line.waiters:
            line.waiters.popleft().succeed()
        else:
            line.locked = False

    # -- residency bookkeeping -------------------------------------------------------

    def _resident_count(self) -> int:
        return len(self._lru) if self.eviction == "lru" else len(self._ring)

    def _install(self, key: tuple, line: _Line) -> None:
        self._lines[key] = line
        if self.eviction == "lru":
            self._lru[key] = None
            self._lru.move_to_end(key)
        elif key not in self._ring_set:
            self._ring.append(key)
            self._ring_set.add(key)
        line.ref = True

    def _touch(self, key: tuple, line: _Line) -> None:
        if self.eviction == "lru":
            if key in self._lru:
                self._lru.move_to_end(key)
        else:
            line.ref = True

    def _remove_line(self, key: tuple, line: _Line,
                     note_drop: bool = True) -> None:
        """Drop a resident line.  Caller holds the line lock and has
        verified identity."""
        del self._lines[key]
        if self.eviction == "lru":
            self._lru.pop(key, None)
        elif key in self._ring_set:
            index = self._ring.index(key)
            del self._ring[index]
            self._ring_set.discard(key)
            if index < self._hand:
                self._hand -= 1
            if self._ring and self._hand >= len(self._ring):
                self._hand = 0
        if note_drop:
            self._pending_drops.add(key)

    def _take_drops(self) -> tuple:
        if not self._pending_drops:
            return ()
        drops = tuple(sorted(self._pending_drops))
        self._pending_drops.clear()
        return drops

    def _pick_victim(self) -> Optional[tuple]:
        if self.eviction == "lru":
            for key in self._lru:
                line = self._lines.get(key)
                if line is not None and line.state != FILLING \
                        and not line.locked:
                    return key
            return None
        scanned = 0
        limit = 2 * len(self._ring)
        while self._ring and scanned < limit:
            key = self._ring[self._hand]
            line = self._lines.get(key)
            self._hand = (self._hand + 1) % len(self._ring)
            scanned += 1
            if line is None or line.state == FILLING or line.locked:
                continue
            if line.ref:
                line.ref = False
                continue
            return key
        return None

    def _enforce_capacity(self):
        while self._resident_count() > self.capacity_lines:
            victim = self._pick_victim()
            if victim is None:
                return
            yield from self._evict(victim)

    def _evict(self, key: tuple):
        line = self._lines.get(key)
        if line is None or line.state == FILLING:
            return
        yield from self._lock_line(line)
        try:
            if self._lines.get(key) is not line or line.state == FILLING:
                return
            if line.dirty:
                yield from self._flush_line(key, line)
            self._remove_line(key, line, note_drop=True)
            self.evictions += 1
        finally:
            self._unlock_line(line)

    # -- directory client -------------------------------------------------------------

    def _dir_request(self, req: CacheReq):
        outcome = yield from self.transport.request(
            DIRECTORY_NODE, PacketType.CACHE_REQ, pid=req.pid, payload=req)
        return outcome

    def _spawn_wend(self, txn_id: int, pid: int, mn: str) -> None:
        """Release a directory write transaction in the background.

        The wend must eventually land or the directory's key locks stay
        held forever, so it retries past transport exhaustion.
        """

        def runner():
            backoff = self.params.clib.timeout_ns
            while True:
                try:
                    yield from self._dir_request(
                        CacheReq("wend", pid, mn, txn_id=txn_id))
                    return
                except RequestFailed:
                    yield self.env.timeout(backoff)
                    backoff = min(backoff * 2,
                                  self.params.clib.slow_timeout_ns)

        self.env.process(runner())

    # -- flush --------------------------------------------------------------------------

    def _flush_line(self, key: tuple, line: _Line):
        """Write a dirty line's bytes back to its MN.

        No oracle hooks: these bytes were committed when their write-back
        write acked, so re-materializing them at the MN is idempotent.
        Transport exhaustion (board crashed) retries forever — the data
        must land; a typed rejection (region freed under us) abandons it.
        """
        mn, pid, line_va = key
        payload = bytes(line.data)
        backoff = self.cacheparams.flush_retry_ns
        while True:
            try:
                outcome = yield from self.transport.request(
                    mn, PacketType.WRITE, pid=pid, va=line_va,
                    size=len(payload), data=payload)
            except RequestFailed:
                self.flush_retries += 1
                yield self.env.timeout(backoff)
                backoff = min(backoff * 2, self.params.clib.slow_timeout_ns)
                continue
            status = (outcome.body.status if outcome.body is not None
                      else Status.INVALID_VA)
            line.dirty = False
            if status is Status.OK:
                self.writebacks += 1
                return True
            self.flush_failures += 1
            return False

    # -- invalidation (directory -> CN) ---------------------------------------------------

    def on_inval(self, packet: Packet) -> None:
        """Transport receive hook for CACHE_INVAL messages (sync, no env
        interaction on the dedup paths)."""
        header = packet.header
        msg = packet.payload
        if msg.seq in self._inval_done:
            self._ack_inval(header.src, header.request_id)
            return
        if msg.seq in self._active_invals:
            # Retransmission of one we're already applying: remember the
            # newest attempt ID so the eventual ack matches it.
            self._active_invals[msg.seq] = header.request_id
            return
        self._active_invals[msg.seq] = header.request_id
        self.env.process(self._apply_inval(msg))

    def _apply_inval(self, msg):
        tracer = self.tracer
        span = (tracer.begin(f"cache:{msg.action}", "cache", self.node.name,
                             args={"keys": len(msg.keys)})
                if tracer is not None else None)
        for key in msg.keys:
            yield from self._inval_key(key, msg.action)
        self.invalidations += len(msg.keys)
        self._inval_done[msg.seq] = None
        while len(self._inval_done) > 256:
            self._inval_done.popitem(last=False)
        reply_id = self._active_invals.pop(msg.seq)
        if tracer is not None:
            tracer.end(span)
        self._ack_inval(DIRECTORY_NODE, reply_id)

    def _inval_key(self, key: tuple, action: str):
        line = self._lines.get(key)
        if line is None:
            return                    # already evicted: trivial ack
        if line.state == FILLING:
            line.poisoned = True      # the arriving fill must not install
            return
        yield from self._lock_line(line)
        try:
            if self._lines.get(key) is not line or line.state == FILLING:
                return
            if line.dirty:
                yield from self._flush_line(key, line)
            if action == "recall":
                # The directory initiated this drop and updates its own
                # entry — no drop notice needed.
                self._remove_line(key, line, note_drop=False)
            else:
                line.state = SHARED
                line.dirty = False
        finally:
            self._unlock_line(line)

    def _ack_inval(self, dst: str, request_id: int) -> None:
        header = ClioHeader(
            src=self.node.name, dst=dst, request_id=request_id,
            packet_type=PacketType.RESPONSE)
        self.transport.topology.send(Packet(
            header=header, payload=ResponseBody(status=Status.OK),
            wire_bytes=self.params.network.header_bytes,
            sent_at=self.env.now))

    # -- read path ------------------------------------------------------------------------

    def read(self, thread, va: int, size: int):
        """Process-generator: serve a read, from the cache when possible."""
        if not self.cacheable(va, size):
            data = yield from self._bypass_read(thread, va, size)
            return data
        key = self._key(thread, va)
        while True:
            line = self._lines.get(key)
            if line is None:
                result = yield from self._miss(thread, key, va, size)
                if result is not _RETRY:
                    return result
                continue
            if line.state == FILLING:
                yield line.fill_event
                continue
            yield from self._lock_line(line)
            if self._lines.get(key) is not line or line.state == FILLING:
                self._unlock_line(line)
                continue
            verifier = self.node.verifier
            token = (verifier.read_begin(thread, va, size)
                     if verifier is not None else None)
            yield self.env.timeout(self.hit_ns)
            offset = va - key[2]
            data = bytes(line.data[offset:offset + size])
            self._touch(key, line)
            self._unlock_line(line)
            self.hits += 1
            if token is not None:
                verifier.read_checked(token, data, 0)
            return data

    def _miss(self, thread, key: tuple, va: int, size: int):
        verifier = self.node.verifier
        self.misses += 1
        line = _Line(key, fill_event=self.env.event())
        self._lines[key] = line       # FILLING placeholder
        installed = False
        tracer = self.tracer
        span = (tracer.begin("cache:fill", "cache", self.node.name,
                             args={"va": key[2]})
                if tracer is not None else None)
        try:
            outcome = yield from self._dir_request(CacheReq(
                "fill", key[1], key[0], keys=(key,),
                drops=self._take_drops()))
            if outcome.body.value.get("owner_local"):
                # Our own node owns this line dirty (a local write raced
                # us): the MN's bytes are stale.  Re-examine locally.
                return _RETRY
            token = (verifier.read_begin(thread, va, size)
                     if verifier is not None else None)
            try:
                mn_out = yield from self.transport.request(
                    key[0], PacketType.READ, pid=key[1], va=key[2],
                    size=self.line_bytes)
                status = (mn_out.body.status if mn_out.body is not None
                          else Status.INVALID_VA)
                if status is not Status.OK:
                    raise RemoteAccessError(status, f"rread({va:#x}, {size})")
            except BaseException:
                if token is not None:
                    verifier.read_failed(token)
                raise
            buf = bytearray(mn_out.data)
            offset = va - key[2]
            data = bytes(buf[offset:offset + size])
            retries = outcome.retries + mn_out.retries
            if not line.poisoned and self._lines.get(key) is line:
                line.data = buf
                line.state = SHARED
                self._install(key, line)
                installed = True
                self.fills += 1
            if token is not None:
                verifier.read_checked(token, data, retries)
            if installed:
                yield from self._enforce_capacity()
            return data
        finally:
            if not installed and self._lines.get(key) is line:
                del self._lines[key]
                # The directory may have registered us before the fill
                # fell through — let it know we hold nothing.
                self._pending_drops.add(key)
            if line.fill_event is not None and not line.fill_event.triggered:
                line.fill_event.succeed()
            if tracer is not None:
                tracer.end(span)

    def _bypass_read(self, thread, va: int, size: int):
        """Multi-line read: go to the MN, syncing dirty owners first
        (write-back) so the MN holds current bytes."""
        verifier = self.node.verifier
        extra_retries = 0
        if self.policy == "back":
            keys = self._range_keys(thread.process.mn, thread.process.pid,
                                    va, size)
            sync_out = yield from self._dir_request(CacheReq(
                "sync", thread.process.pid, thread.process.mn, keys=keys,
                drops=self._take_drops()))
            extra_retries = sync_out.retries
        token = (verifier.read_begin(thread, va, size)
                 if verifier is not None else None)
        try:
            outcome = yield from self.transport.request(
                thread.process.mn, PacketType.READ, pid=thread.process.pid,
                va=va, size=size)
            status = (outcome.body.status if outcome.body is not None
                      else Status.INVALID_VA)
            if status is not Status.OK:
                raise RemoteAccessError(status, f"rread({va:#x}, {size})")
        except BaseException:
            if token is not None:
                verifier.read_failed(token)
            raise
        if token is not None:
            verifier.read_checked(token, outcome.data,
                                  extra_retries + outcome.retries)
        return outcome.data

    # -- write path -----------------------------------------------------------------------

    def write(self, thread, va: int, data: bytes):
        """Process-generator: serve a write under the active policy."""
        if not self.cacheable(va, len(data)):
            yield from self._bypass_write(thread, va, data)
            return
        key = self._key(thread, va)
        # Never open a write transaction while a local fill for the key is
        # in flight: its MN read could race our MN write (write-through)
        # or our dirty ownership (write-back).  Residual races are closed
        # by poisoning the placeholder at commit time.
        while True:
            line = self._lines.get(key)
            if line is None or line.state != FILLING:
                break
            yield line.fill_event
        if self.policy == "through":
            yield from self._write_through(thread, key, va, data)
        else:
            yield from self._write_back(thread, key, va, data)

    def _write_through(self, thread, key: tuple, va: int, data: bytes):
        verifier = self.node.verifier
        txn_id = next(self._txn_ids)
        try:
            dir_out = yield from self._dir_request(CacheReq(
                "wbegin", key[1], key[0], keys=(key,), txn_id=txn_id,
                drops=self._take_drops()))
        except BaseException:
            # The directory may have executed the wbegin and lost the
            # response: always send the matching wend.
            self._spawn_wend(txn_id, key[1], key[0])
            raise
        token = (verifier.write_begin(thread, va, data)
                 if verifier is not None else None)
        try:
            try:
                outcome = yield from self.transport.request(
                    key[0], PacketType.WRITE, pid=key[1], va=va,
                    size=len(data), data=bytes(data))
                status = (outcome.body.status if outcome.body is not None
                          else Status.INVALID_VA)
                if status is not Status.OK:
                    raise RemoteAccessError(
                        status, f"rwrite({va:#x}, {len(data)})")
            except BaseException:
                if token is not None:
                    verifier.write_failed(token)
                # The write may have applied without the ack: our local
                # copy can no longer be trusted.
                yield from self._discard_local(key)
                raise
            line = self._lines.get(key)
            if line is not None:
                if line.state == FILLING:
                    line.poisoned = True   # its MN read raced our write
                else:
                    yield from self._lock_line(line)
                    if self._lines.get(key) is line and line.state == SHARED:
                        offset = va - key[2]
                        line.data[offset:offset + len(data)] = data
                        self._touch(key, line)
                    self._unlock_line(line)
            self.write_throughs += 1
            if token is not None:
                verifier.write_acked(token, dir_out.retries + outcome.retries)
        finally:
            self._spawn_wend(txn_id, key[1], key[0])

    def _write_back(self, thread, key: tuple, va: int, data: bytes):
        verifier = self.node.verifier
        line = self._lines.get(key)
        if line is not None and line.state == MODIFIED:
            yield from self._lock_line(line)
            if self._lines.get(key) is line and line.state == MODIFIED:
                # Owner hit: commit locally, zero network round trips.
                token = (verifier.write_begin(thread, va, data)
                         if verifier is not None else None)
                yield self.env.timeout(self.hit_ns)
                offset = va - key[2]
                line.data[offset:offset + len(data)] = data
                line.dirty = True
                self._touch(key, line)
                self._unlock_line(line)
                self.write_hits += 1
                if token is not None:
                    verifier.write_acked(token, 0)
                return
            self._unlock_line(line)
        txn_id = next(self._txn_ids)
        try:
            dir_out = yield from self._dir_request(CacheReq(
                "wbegin", key[1], key[0], keys=(key,), txn_id=txn_id,
                want_owner=True, drops=self._take_drops()))
        except BaseException:
            self._spawn_wend(txn_id, key[1], key[0])
            raise
        try:
            yield from self._write_back_commit(thread, key, va, data,
                                               dir_out.retries)
        finally:
            self._spawn_wend(txn_id, key[1], key[0])

    def _write_back_commit(self, thread, key: tuple, va: int, data: bytes,
                           dir_retries: int):
        verifier = self.node.verifier
        line = self._lines.get(key)
        if line is not None and line.state in (SHARED, MODIFIED):
            yield from self._lock_line(line)
            if self._lines.get(key) is line \
                    and line.state in (SHARED, MODIFIED):
                # Upgrade in place: we already hold current bytes.
                token = (verifier.write_begin(thread, va, data)
                         if verifier is not None else None)
                yield self.env.timeout(self.hit_ns)
                offset = va - key[2]
                line.data[offset:offset + len(data)] = data
                line.state = MODIFIED
                line.dirty = True
                self._touch(key, line)
                self._unlock_line(line)
                self.write_hits += 1
                if token is not None:
                    verifier.write_acked(token, dir_retries)
                return
            self._unlock_line(line)
        offset = va - key[2]
        if offset == 0 and len(data) == self.line_bytes:
            buf = bytearray(data)      # full-line write: nothing to fetch
            mn_retries = 0
        else:
            # Fetch-on-write: merge into the current line image.  The MN
            # holds current bytes (any previous owner was recalled and
            # flushed by our wbegin).
            mn_out = yield from self.transport.request(
                key[0], PacketType.READ, pid=key[1], va=key[2],
                size=self.line_bytes)
            status = (mn_out.body.status if mn_out.body is not None
                      else Status.INVALID_VA)
            if status is not Status.OK:
                raise RemoteAccessError(
                    status, f"rwrite({va:#x}, {len(data)}) fill")
            buf = bytearray(mn_out.data)
            buf[offset:offset + len(data)] = data
            mn_retries = mn_out.retries
        token = (verifier.write_begin(thread, va, data)
                 if verifier is not None else None)
        yield self.env.timeout(self.hit_ns)
        existing = self._lines.get(key)
        if existing is not None and existing.state == FILLING:
            existing.poisoned = True   # a raced local fill must not install
        new_line = _Line(key)
        new_line.data = buf
        new_line.state = MODIFIED
        new_line.dirty = True
        self._install(key, new_line)
        self.write_fills += 1
        if token is not None:
            verifier.write_acked(token, dir_retries + mn_retries)
        yield from self._enforce_capacity()

    def _discard_local(self, key: tuple):
        line = self._lines.get(key)
        if line is None:
            return
        if line.state == FILLING:
            line.poisoned = True
            return
        yield from self._lock_line(line)
        try:
            if self._lines.get(key) is not line or line.state == FILLING:
                return
            if line.dirty:
                yield from self._flush_line(key, line)
            self._remove_line(key, line, note_drop=True)
        finally:
            self._unlock_line(line)

    # -- guarded bypass (atomics, large writes, frees) --------------------------------------

    def write_guard(self, thread, va: int, size: int):
        """Process-generator: open a write transaction covering
        ``[va, va+size)`` with every cached copy — including our own —
        recalled.  Returns a :class:`_Guard`; pass it to
        :meth:`guard_end` (in a finally block)."""
        mn, pid = thread.process.mn, thread.process.pid
        keys = self._range_keys(mn, pid, va, size)
        txn_id = next(self._txn_ids)
        try:
            outcome = yield from self._dir_request(CacheReq(
                "wbegin", pid, mn, keys=keys, txn_id=txn_id,
                include_self=True, drops=self._take_drops()))
        except BaseException:
            self._spawn_wend(txn_id, pid, mn)
            raise
        return _Guard(txn_id=txn_id, pid=pid, mn=mn, retries=outcome.retries)

    def guard_end(self, guard: _Guard) -> None:
        self._spawn_wend(guard.txn_id, guard.pid, guard.mn)

    def _bypass_write(self, thread, va: int, data: bytes):
        verifier = self.node.verifier
        guard = yield from self.write_guard(thread, va, len(data))
        token = (verifier.write_begin(thread, va, data)
                 if verifier is not None else None)
        try:
            try:
                outcome = yield from self.transport.request(
                    thread.process.mn, PacketType.WRITE,
                    pid=thread.process.pid, va=va, size=len(data),
                    data=bytes(data))
                status = (outcome.body.status if outcome.body is not None
                          else Status.INVALID_VA)
                if status is not Status.OK:
                    raise RemoteAccessError(
                        status, f"rwrite({va:#x}, {len(data)})")
            except BaseException:
                if token is not None:
                    verifier.write_failed(token)
                raise
            if token is not None:
                verifier.write_acked(token, guard.retries + outcome.retries)
        finally:
            self.guard_end(guard)

    # -- departure / disable ------------------------------------------------------------------

    def shutdown(self):
        """Process-generator: flush and drop every line, then tell the
        directory this CN departed.  Used by ``disable_caching`` and CN
        teardown; the cache keeps answering coherence messages after."""
        self.enabled = False
        for key in list(self._lines):
            line = self._lines.get(key)
            if line is None:
                continue
            if line.state == FILLING:
                line.poisoned = True
                continue
            yield from self._evict(key)
        try:
            yield from self._dir_request(CacheReq(
                "depart", 0, "", drops=self._take_drops()))
        except RequestFailed:
            pass   # stale entries resolve as trivially-acked recalls

"""The cache directory: per-line ownership registry + invalidation.

One :class:`CacheDirectory` serves the whole cluster.  It is attached to
the topology as a node named ``cachedir`` living on the switch partition
(same propagation/forwarding cost as reaching the ToR), and tracks, per
cache line key ``(mn, pid, line_va)``, which CNs hold a copy and which —
at most one — owns it dirty (write-back).

Protocol messages (all over the simulated fabric, so they are subject to
loss, corruption, and link faults):

* CN -> directory: :class:`CacheReq` carried in a ``CACHE_REQ`` request
  (``fill`` / ``wbegin`` / ``wend`` / ``sync`` / ``depart``), answered
  with a normal ``RESPONSE``.  The CN transport retries these like any
  request; the directory dedups retries by the original request ID and
  re-answers completed ones instead of re-executing.
* directory -> CN: :class:`InvalMsg` carried in a ``CACHE_INVAL`` packet
  (``recall`` = flush-if-dirty then drop, ``downgrade`` = flush then
  keep a shared clean copy), retransmitted with exponential backoff
  until the CN acks — coherence requires delivery, so retransmission is
  unbounded (harness deadlines bound wall time; see docs/caching.md).

Write transactions hold per-key FIFO locks from ``wbegin`` until the
CN's ``wend``, so a fill for a key under write is simply queued — the
stale-fill race cannot happen.  Multi-key operations acquire locks in
sorted key order, which makes lock-order deadlocks impossible.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.core.cboard import ResponseBody
from repro.core.pipeline import Status
from repro.net.packet import ClioHeader, Packet, PacketType
from repro.params import ClioParams
from repro.sim import Environment
from repro.telemetry.metrics import MetricsRegistry, StatsView
from repro.telemetry.spans import Tracer
from repro.transport.clib_transport import _request_ids

#: Node name the directory registers on the topology.
DIRECTORY_NODE = "cachedir"


@dataclass(frozen=True, slots=True)
class CacheReq:
    """One CN -> directory request (the CACHE_REQ payload).

    ``keys`` are ``(mn, pid, line_va)`` tuples.  ``drops`` piggybacks
    lines the CN evicted since its last message, so the directory can
    trim its sharer sets lazily (a stale sharer entry only costs a
    spurious recall, which the CN trivially acks).
    """

    op: str                       # fill | wbegin | wend | sync | depart
    pid: int
    mn: str
    keys: tuple = ()
    txn_id: int = 0               # wbegin/wend pairing, scoped to the CN
    want_owner: bool = False      # wbegin: take exclusive (write-back) ownership
    include_self: bool = False    # wbegin: recall the requester's copy too
    drops: tuple = ()             # evicted keys, processed before the op


@dataclass(frozen=True, slots=True)
class InvalMsg:
    """One directory -> CN invalidation (the CACHE_INVAL payload)."""

    seq: int                      # dedup key across retransmissions
    action: str                   # recall | downgrade
    keys: tuple


class _Entry:
    """Directory state for one cache line key."""

    __slots__ = ("sharers", "owner")

    def __init__(self):
        self.sharers: set[str] = set()
        self.owner: Optional[str] = None


class _ReqState:
    """Dedup state for one logical CACHE_REQ (original + retries)."""

    __slots__ = ("reply_src", "reply_id", "done", "response")

    def __init__(self, reply_src: str, reply_id: int):
        self.reply_src = reply_src
        self.reply_id = reply_id      # latest attempt's ID: answer that one
        self.done = False
        self.response: Optional[ResponseBody] = None


class CacheDirectory:
    """Cluster-wide cache-line directory, reachable as node ``cachedir``."""

    #: Completed requests remembered for retry re-answering before being
    #: forgotten; a retry can only arrive within max_retries timeouts of
    #: the original, far fewer than this many directory requests.
    DONE_MEMORY = 8192

    def __init__(self, env: Environment, topology, params: ClioParams,
                 cacheparams=None,
                 registry: Optional[MetricsRegistry] = None):
        self.env = env
        self.name = DIRECTORY_NODE
        self.topology = topology
        self.params = params
        self._net = params.network
        self._cacheparams = (cacheparams if cacheparams is not None
                             else params.cache)
        self._inval_timeout_ns = params.clib.timeout_ns
        self._inval_timeout_cap = params.clib.slow_timeout_ns
        self._lines: dict[tuple, _Entry] = {}
        #: key -> [held, deque of waiter events]; release hands the lock
        #: to the first waiter (FIFO), or deletes the slot when idle.
        self._locks: dict[tuple, list] = {}
        #: (cn, txn_id) -> locked keys of an open write transaction.
        self._txns: dict[tuple, tuple] = {}
        #: wend-before-wbegin arrivals (the CN's wbegin request exhausted
        #: transport retries *after* we executed it): the completing
        #: wbegin sees its txn here and releases immediately.
        self._aborted: set[tuple] = set()
        self._aborted_order: deque = deque()
        self._reqs: dict[int, _ReqState] = {}
        self._done_order: deque = deque()
        #: invalidation retransmission state.
        self._seq_ids = itertools.count(1)
        self._pending_invals: dict[int, int] = {}   # request_id -> seq
        self._acked: set[int] = set()
        self._waiters: dict[int, object] = {}
        # Counters (function-backed telemetry views below).
        self.requests_served = 0
        self.fills = 0
        self.write_txns = 0
        self.syncs = 0
        self.recalls = 0          # recall messages sent (first transmission)
        self.downgrades = 0
        self.invals_sent = 0
        self.inval_retries = 0
        self.freezes = 0
        self.tracer: Optional[Tracer] = None
        topology.add_node(self.name, self.receive, node_env=env)
        metrics = (registry if registry is not None
                   else MetricsRegistry()).scope("cache.dir")
        self._stats = StatsView({
            "requests_served": metrics.counter(
                "requests_served", fn=lambda: self.requests_served),
            "fills": metrics.counter("fills", fn=lambda: self.fills),
            "write_txns": metrics.counter(
                "write_txns", fn=lambda: self.write_txns),
            "syncs": metrics.counter("syncs", fn=lambda: self.syncs),
            "recalls": metrics.counter("recalls", fn=lambda: self.recalls),
            "downgrades": metrics.counter(
                "downgrades", fn=lambda: self.downgrades),
            "invals_sent": metrics.counter(
                "invals_sent", fn=lambda: self.invals_sent),
            "inval_retries": metrics.counter(
                "inval_retries", "CACHE_INVAL retransmissions",
                fn=lambda: self.inval_retries),
            "freezes": metrics.counter(
                "freezes", "region freezes (migration/free recall)",
                fn=lambda: self.freezes),
        })
        metrics.gauge("tracked_lines", "keys with at least one cached copy",
                      fn=lambda: len(self._lines))
        metrics.gauge("open_txns", "write transactions holding locks",
                      fn=lambda: len(self._txns))

    def stats(self) -> dict:
        return self._stats.snapshot()

    # -- receive side ------------------------------------------------------------

    def receive(self, packet: Packet) -> None:
        header = packet.header
        if packet.corrupt:
            return                      # dropped; the sender retries
        if header.packet_type is PacketType.RESPONSE:
            # A CN acking one of our CACHE_INVALs.
            seq = self._pending_invals.get(header.request_id)
            if seq is None:
                return
            self._acked.add(seq)
            waiter = self._waiters.get(seq)
            if waiter is not None and not waiter.triggered:
                waiter.succeed()
            return
        if header.packet_type is not PacketType.CACHE_REQ:
            return
        orig = header.retry_of if header.retry_of is not None else header.request_id
        state = self._reqs.get(orig)
        if state is not None:
            # A retry of a request we have already seen: remember the new
            # attempt ID (the CN only listens on its latest) and, if the
            # op already ran, just re-answer — never re-execute.
            state.reply_id = header.request_id
            if state.done:
                self._respond(state)
            return
        state = _ReqState(reply_src=header.src, reply_id=header.request_id)
        self._reqs[orig] = state
        self.env.process(self._serve(packet.payload, header.src, state, orig))

    def _respond(self, state: _ReqState) -> None:
        header = ClioHeader(
            src=self.name, dst=state.reply_src, request_id=state.reply_id,
            packet_type=PacketType.RESPONSE)
        self.topology.send(Packet(
            header=header, payload=state.response,
            wire_bytes=self._net.header_bytes, sent_at=self.env.now))

    def _serve(self, req: CacheReq, src: str, state: _ReqState, orig: int):
        yield self.env.timeout(self._cacheparams.dir_process_ns)
        tracer = self.tracer
        span = (tracer.begin(f"dir:{req.op}", "cache", self.name,
                             args={"src": src, "keys": len(req.keys)})
                if tracer is not None else None)
        self._apply_drops(req.drops, src)
        if req.op == "fill":
            value = yield from self._op_fill(req, src)
        elif req.op == "wbegin":
            value = yield from self._op_wbegin(req, src)
        elif req.op == "wend":
            value = self._op_wend(req, src)
        elif req.op == "sync":
            value = yield from self._op_sync(req, src)
        elif req.op == "depart":
            value = self._op_depart(src)
        else:
            raise ValueError(f"unknown cache directory op {req.op!r}")
        self.requests_served += 1
        state.response = ResponseBody(status=Status.OK, value=value)
        state.done = True
        self._done_order.append(orig)
        while len(self._done_order) > self.DONE_MEMORY:
            self._reqs.pop(self._done_order.popleft(), None)
        if tracer is not None:
            tracer.end(span)
        self._respond(state)

    # -- per-key FIFO locks --------------------------------------------------------

    def _acquire(self, key: tuple):
        slot = self._locks.get(key)
        if slot is None:
            self._locks[key] = [True, deque()]
            return
        if not slot[0]:
            slot[0] = True
            return
        waiter = self.env.event()
        slot[1].append(waiter)
        yield waiter                    # woken holding the lock (handoff)

    def _release(self, key: tuple) -> None:
        slot = self._locks.get(key)
        if slot is None:
            return
        if slot[1]:
            slot[1].popleft().succeed()  # hand the lock to the next waiter
        else:
            del self._locks[key]

    def _locked(self, key: tuple) -> bool:
        return key in self._locks

    # -- ops -----------------------------------------------------------------------

    def _apply_drops(self, drops: tuple, src: str) -> None:
        """Trim sharer sets for lines the CN evicted (lock-free: a stale
        entry is benign, an eager trim only skips a spurious recall)."""
        for key in drops:
            entry = self._lines.get(key)
            if entry is None:
                continue
            entry.sharers.discard(src)
            if entry.owner == src:
                entry.owner = None
            if not entry.sharers and entry.owner is None \
                    and not self._locked(key):
                del self._lines[key]

    def _op_fill(self, req: CacheReq, src: str):
        key = req.keys[0]
        yield from self._acquire(key)
        try:
            entry = self._lines.get(key)
            if entry is not None and entry.owner == src:
                # The requesting node itself owns the line dirty (its fill
                # raced a local write transaction).  Reading the MN now
                # would return stale bytes — tell the CN to serve locally.
                return {"owner_local": True}
            if entry is None:
                entry = self._lines[key] = _Entry()
            if entry.owner is not None:
                yield from self._notify(entry.owner, "downgrade", (key,))
                self.downgrades += 1
                entry.sharers.add(entry.owner)
                entry.owner = None
            entry.sharers.add(src)
            self.fills += 1
            return {"owner_local": False}
        finally:
            self._release(key)

    def _op_wbegin(self, req: CacheReq, src: str):
        keys = tuple(sorted(req.keys))
        for key in keys:
            yield from self._acquire(key)
        targets: dict[str, list] = {}
        for key in keys:
            entry = self._lines.get(key)
            if entry is None:
                continue
            holders = set(entry.sharers)
            if entry.owner is not None:
                holders.add(entry.owner)
            for cn in holders:
                if cn == src and not req.include_self:
                    continue
                targets.setdefault(cn, []).append(key)
        if targets:
            self.recalls += len(targets)
            recalls = [self.env.process(self._notify(cn, "recall", tuple(ks)))
                       for cn, ks in sorted(targets.items())]
            yield self.env.all_of(recalls)
        for key in keys:
            entry = self._lines.get(key)
            keeps_copy = (entry is not None and not req.include_self
                          and (src in entry.sharers or entry.owner == src))
            if entry is None:
                if not (req.want_owner or keeps_copy):
                    continue
                entry = self._lines[key] = _Entry()
            entry.owner = src if req.want_owner else None
            entry.sharers = ({src} if keeps_copy and not req.want_owner
                             else set())
            if not entry.sharers and entry.owner is None:
                del self._lines[key]
        self.write_txns += 1
        txn = (src, req.txn_id)
        if txn in self._aborted:
            # The CN already gave up on this transaction (its wbegin
            # request exhausted retries and it sent wend) — don't leave
            # the locks held forever.
            self._aborted.discard(txn)
            for key in keys:
                self._release(key)
        else:
            self._txns[txn] = keys
        return {"granted": True}

    def _op_wend(self, req: CacheReq, src: str):
        txn = (src, req.txn_id)
        keys = self._txns.pop(txn, None)
        if keys is None:
            # wend for a transaction we have not (yet) completed: either a
            # duplicate (harmless) or the wbegin is still queued behind
            # other locks — record the abort so it releases on completion.
            self._aborted.add(txn)
            self._aborted_order.append(txn)
            while len(self._aborted_order) > self.DONE_MEMORY:
                self._aborted.discard(self._aborted_order.popleft())
            return {"released": False}
        for key in keys:
            self._release(key)
        return {"released": True}

    def _op_sync(self, req: CacheReq, src: str):
        """Flush every dirty owner of ``keys`` back to the MN (write-back
        bypass reads): owners — including the requester's own node — are
        downgraded to shared, so the MN holds current bytes."""
        keys = tuple(sorted(req.keys))
        for key in keys:
            yield from self._acquire(key)
        try:
            targets: dict[str, list] = {}
            for key in keys:
                entry = self._lines.get(key)
                if entry is not None and entry.owner is not None:
                    targets.setdefault(entry.owner, []).append(key)
            if targets:
                flushes = [
                    self.env.process(self._notify(cn, "downgrade", tuple(ks)))
                    for cn, ks in sorted(targets.items())]
                yield self.env.all_of(flushes)
                for key in keys:
                    entry = self._lines.get(key)
                    if entry is not None and entry.owner is not None:
                        entry.sharers.add(entry.owner)
                        entry.owner = None
            self.syncs += 1
            return {"synced": True}
        finally:
            for key in keys:
                self._release(key)

    def _op_depart(self, src: str):
        """Forget every copy a departing CN holds (its cache flushed and
        dropped everything locally before sending this)."""
        for key in list(self._lines):
            entry = self._lines[key]
            entry.sharers.discard(src)
            if entry.owner == src:
                entry.owner = None
            if not entry.sharers and entry.owner is None \
                    and not self._locked(key):
                del self._lines[key]
        return {"departed": True}

    # -- region freeze (migration / free) -------------------------------------------

    def region_keys(self, mn: str, pid: int, va: int, size: int) -> tuple:
        """Every line key overlapping ``[va, va+size)`` on ``mn``."""
        line = self._cacheparams.line_bytes
        first = va - (va % line)
        return tuple((mn, pid, line_va)
                     for line_va in range(first, va + size, line))

    def freeze_region(self, pid: int, mn: str, va: int, size: int):
        """Process-generator: recall every cached copy of a region and
        return with all its line locks HELD.

        Used by the controller before migrating or freeing a region:
        dirty lines are flushed back to the *source* board (so the copy
        loop reads current bytes), every copy is dropped, and cache
        traffic for the region stays blocked until
        :meth:`release_region`.  Returns the token to release.
        """
        keys = self.region_keys(mn, pid, va, size)
        for key in keys:
            yield from self._acquire(key)
        targets: dict[str, list] = {}
        for key in keys:
            entry = self._lines.get(key)
            if entry is None:
                continue
            holders = set(entry.sharers)
            if entry.owner is not None:
                holders.add(entry.owner)
            for cn in holders:
                targets.setdefault(cn, []).append(key)
        if targets:
            recalls = [self.env.process(self._notify(cn, "recall", tuple(ks)))
                       for cn, ks in sorted(targets.items())]
            yield self.env.all_of(recalls)
        for key in keys:
            self._lines.pop(key, None)
        self.freezes += 1
        return keys

    def release_region(self, keys: tuple) -> None:
        for key in keys:
            self._release(key)

    # -- invalidation transmission ----------------------------------------------------

    def _notify(self, cn: str, action: str, keys: tuple):
        """Process-generator: deliver one InvalMsg to ``cn``, retransmitting
        with exponential backoff until acked.

        Every attempt uses a fresh request ID (all mapping back to one
        ``seq``, which the CN dedups on), so a late ack of an earlier
        attempt still counts.  Retransmission is unbounded: an unacked
        invalidation would silently break coherence, so the directory
        keeps trying — a dead CN's transport is still simulated and acks
        after its link recovers.
        """
        seq = next(self._seq_ids)
        attempt_ids = []
        self.invals_sent += 1
        timeout_ns = self._inval_timeout_ns
        attempt = 0
        while seq not in self._acked:
            request_id = next(_request_ids)
            attempt_ids.append(request_id)
            self._pending_invals[request_id] = seq
            if attempt > 0:
                self.inval_retries += 1
            header = ClioHeader(
                src=self.name, dst=cn, request_id=request_id,
                packet_type=PacketType.CACHE_INVAL)
            self.topology.send(Packet(
                header=header, payload=InvalMsg(seq=seq, action=action,
                                                keys=keys),
                wire_bytes=self._net.header_bytes
                + self._net.subop_header_bytes * len(keys),
                sent_at=self.env.now))
            waiter = self.env.event()
            self._waiters[seq] = waiter

            def expire(w=waiter):
                if not w.triggered:
                    w.succeed()

            self.env.schedule_callback(timeout_ns, expire)
            yield waiter
            attempt += 1
            timeout_ns = min(timeout_ns * 2, self._inval_timeout_cap)
        self._acked.discard(seq)
        self._waiters.pop(seq, None)
        for request_id in attempt_ids:
            self._pending_invals.pop(request_id, None)

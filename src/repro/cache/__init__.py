"""repro.cache — CN-side coherent hot-page cache (MIND-style).

An opt-in CLib-local DRAM cache of hot remote pages, line-granularity,
kept coherent by a directory co-located with the ToR switch (the
GlobalController's vantage point): single-writer / multi-reader with
recall ("drop your copy, flushing first if dirty") and downgrade
("flush and fall back to shared") messages delivered over the simulated
fabric with real latency, loss, and retransmission.

Everything here is inert until :meth:`repro.cluster.ClioCluster.enable_caching`
is called: a cache-off run schedules zero extra events and stays
bit-identical to the pre-cache goldens.

See docs/caching.md for the protocol walkthrough.
"""

from repro.cache.directory import CacheDirectory, CacheReq, InvalMsg
from repro.cache.pagecache import PageCache

__all__ = ["CacheDirectory", "CacheReq", "InvalMsg", "PageCache"]

"""repro.verify: opt-in runtime correctness checking.

Three layers, attached together by
:meth:`repro.cluster.ClioCluster.enable_verification`:

* :mod:`repro.verify.oracle` — a shadow-memory mirror of every
  acknowledged write, checking every completed read (retransmission-
  and epoch-aware);
* :mod:`repro.verify.invariants` — conservation/coherence predicates
  over allocator, page-table, TLB, retry-ring, sync-unit, and transport
  state;
* :mod:`repro.verify.linearize` — a Wing–Gong linearizability checker
  applied to the MN atomic unit and Clio-KV histories.

``docs/correctness.md`` describes the layers and the `repro verify`
CLI entry point.
"""

from repro.verify.harness import (
    ALLOC_STRATEGIES,
    RACK_SCENARIOS,
    ClusterVerifier,
    VerifyRunResult,
    run_alloc_churn,
    run_batched_ycsb,
    run_cached_ycsb,
    run_kv_linearizability,
    run_qos_noisy_neighbor,
    run_rack_ycsb,
    run_sync_linearizability,
    run_verified_chaos,
    spans_near,
)
from repro.verify.invariants import (
    Violation,
    check_board,
    check_cluster,
    check_transport,
    quick_check_board,
)
from repro.verify.linearize import (
    AtomicWordModel,
    HistoryOp,
    KVModel,
    LinearizeResult,
    check_history,
)
from repro.verify.oracle import (
    EpochViolation,
    OpToken,
    ReadMismatch,
    ShadowOracle,
)

__all__ = [
    "AtomicWordModel",
    "ClusterVerifier",
    "ALLOC_STRATEGIES",
    "RACK_SCENARIOS",
    "EpochViolation",
    "HistoryOp",
    "KVModel",
    "LinearizeResult",
    "OpToken",
    "ReadMismatch",
    "ShadowOracle",
    "VerifyRunResult",
    "Violation",
    "check_board",
    "check_cluster",
    "check_history",
    "check_transport",
    "quick_check_board",
    "run_alloc_churn",
    "run_batched_ycsb",
    "run_cached_ycsb",
    "run_kv_linearizability",
    "run_qos_noisy_neighbor",
    "run_rack_ycsb",
    "run_sync_linearizability",
    "run_verified_chaos",
    "spans_near",
]

"""Wing–Gong-style linearizability checking over concurrent op histories.

A *history* is a list of :class:`HistoryOp`: invocations with real-time
bounds (``start_ns``/``end_ns``), the observed result, and a
``completed`` flag.  The checker searches for a *linearization*: a total
order of the operations that (a) respects real time — if op A completed
before op B started, A precedes B — and (b) is legal under a sequential
specification (:class:`AtomicWordModel`, :class:`KVModel`), with every
completed op's observed result matching the spec.

Ops with ``completed=False`` (timed out, or in flight when the run
ended) are *indeterminate*: the checker may linearize them at any point
after their invocation **or** drop them entirely (the request may never
have reached the memory node).  This is exactly the treatment crash-
spanning histories need: an op that failed across a board crash may or
may not have applied, and both worlds must be explored.

The search is a depth-first walk over (set of linearized ops, spec
state) pairs with memoization — the Wing & Gong algorithm [WG93] with
the Lowe-style state cache.  Histories from the MN's single atomic unit
and from Clio-KV are short (hundreds of ops) and have per-client
concurrency of one, so the walk is small in practice; ``max_states``
bounds it defensively and an exceeded budget reports *undecided* rather
than a verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

#: Atomic words are 8 bytes (repro.core.sync.ATOMIC_WIDTH).
_WORD_MASK = (1 << 64) - 1

_FAR_FUTURE = 1 << 62


@dataclass
class HistoryOp:
    """One operation as observed by a client.

    ``action`` is a spec-level tuple (e.g. ``("faa", 3)``,
    ``("put", key, value)``); ``result`` is what the client observed.
    ``completed=False`` marks an indeterminate op whose ``result`` is
    ignored and whose effect may or may not have taken place.
    """

    client: str
    action: tuple
    result: Any = None
    start_ns: int = 0
    end_ns: Optional[int] = None
    completed: bool = True


@dataclass
class LinearizeResult:
    """Outcome of a linearizability check.

    ``ok`` is True (a linearization exists), False (provably none), or
    None (the ``max_states`` budget ran out — undecided).
    """

    ok: Optional[bool]
    order: list = field(default_factory=list)   # witness, when ok
    states_explored: int = 0
    reason: str = ""

    def __bool__(self) -> bool:
        return self.ok is True


class AtomicWordModel:
    """Sequential spec of the MN atomic unit on one 8-byte word.

    Actions: ``("tas",)``, ``("cas", expected, value)``,
    ``("faa", delta)``, ``("store", value)``, ``("read",)``.
    Results for atomics are ``(old_value, success)`` tuples — the wire
    format of :class:`repro.core.sync.AtomicResult`; a read's result is
    the observed value.  The semantics mirror ``AtomicUnit._apply``
    independently (a bug there must *disagree* with this model).
    """

    initial = 0

    @staticmethod
    def apply(state: int, action: tuple) -> tuple[int, Any]:
        kind = action[0]
        if kind == "tas":
            if state == 0:
                return 1, (0, True)
            return state, (state, False)
        if kind == "cas":
            if state == action[1]:
                return action[2] & _WORD_MASK, (state, True)
            return state, (state, False)
        if kind == "faa":
            return (state + action[1]) & _WORD_MASK, (state, True)
        if kind == "store":
            return action[1] & _WORD_MASK, (state, True)
        if kind == "read":
            return state, state
        raise ValueError(f"unknown atomic action {kind!r}")


class KVModel:
    """Sequential spec of Clio-KV get/put/delete.

    State is a sorted tuple of ``(key, value)`` pairs (hashable, so the
    checker can memoize on it).  ``put`` results are normalized to
    ``"ok"`` — the created/updated distinction depends on heap-layout
    details the spec does not model.
    """

    initial: tuple = ()

    @staticmethod
    def apply(state: tuple, action: tuple) -> tuple[tuple, Any]:
        kind = action[0]
        if kind == "get":
            return state, dict(state).get(action[1])
        if kind == "put":
            store = dict(state)
            store[action[1]] = action[2]
            return tuple(sorted(store.items())), "ok"
        if kind == "delete":
            store = dict(state)
            existed = store.pop(action[1], None) is not None
            return tuple(sorted(store.items())), existed
        raise ValueError(f"unknown KV action {kind!r}")


def check_history(history: list[HistoryOp], model,
                  max_states: int = 500_000) -> LinearizeResult:
    """Search for a linearization of ``history`` under ``model``.

    Returns a :class:`LinearizeResult`; ``ok=None`` means the state
    budget was exceeded before a verdict (treat as inconclusive, not as
    a violation).
    """
    ops = sorted(history,
                 key=lambda o: (o.start_ns,
                                o.end_ns if o.end_ns is not None
                                else _FAR_FUTURE))
    n = len(ops)
    if n == 0:
        return LinearizeResult(ok=True, reason="empty history")
    if n > 1200:
        return LinearizeResult(
            ok=None, reason=f"history too long to check ({n} ops)")

    completed_mask = 0
    ends = []
    for index, op in enumerate(ops):
        if op.completed:
            completed_mask |= 1 << index
            ends.append(op.end_ns if op.end_ns is not None else _FAR_FUTURE)
        else:
            ends.append(_FAR_FUTURE)

    initial = model.initial
    # DFS frames: (mask of linearized ops, spec state, order so far).
    stack: list[tuple[int, Any, tuple]] = [(0, initial, ())]
    seen = {(0, initial)}
    states = 0

    while stack:
        mask, state, order = stack.pop()
        if mask & completed_mask == completed_mask:
            # Every completed op linearized; leftover indeterminate ops
            # are the ones that never took effect.
            return LinearizeResult(
                ok=True, order=[ops[i] for i in order],
                states_explored=states)
        states += 1
        if states > max_states:
            return LinearizeResult(
                ok=None, states_explored=states,
                reason=f"state budget exceeded ({max_states})")
        # Frontier: the next linearized op must have started before every
        # unlinearized completed op finished (real-time order).
        min_end = _FAR_FUTURE
        for index in range(n):
            bit = 1 << index
            if mask & bit or not (completed_mask & bit):
                continue
            if ends[index] < min_end:
                min_end = ends[index]
        for index in range(n):
            bit = 1 << index
            if mask & bit:
                continue
            op = ops[index]
            if op.start_ns > min_end:
                # Ops are start-sorted: nothing later qualifies either.
                break
            new_state, expected = model.apply(state, op.action)
            if op.completed and expected != op.result:
                continue
            new_mask = mask | bit
            key = (new_mask, new_state)
            if key in seen:
                continue
            seen.add(key)
            stack.append((new_mask, new_state, order + (index,)))

    return LinearizeResult(ok=False, states_explored=states,
                           reason="no linearization exists")

"""ClusterVerifier: wires oracle + invariants + history capture into a
cluster, plus canned verification workloads for the CLI and tests.

Attachment follows the telemetry pattern exactly: components carry a
``verifier`` attribute that is ``None`` by default and every hook sits
behind a single ``is not None`` check, so an unverified run schedules no
events, draws no RNG, and keeps bit-identical timestamps.  A *verified*
run is also passive — recording and checking happen synchronously inside
existing callbacks — so even then the simulated timeline is unchanged
(``tests/verify/test_chaos_oracle.py`` pins both properties).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from repro.params import MB, MS, US, ClioParams
from repro.verify.invariants import (
    Violation,
    check_board,
    check_cluster,
    quick_check_board,
)
from repro.verify.linearize import (
    AtomicWordModel,
    HistoryOp,
    KVModel,
    LinearizeResult,
    check_history,
)
from repro.verify.oracle import ShadowOracle


class ClusterVerifier:
    """Attaches the three checking layers to a live ClioCluster."""

    MAX_VIOLATIONS = 400

    def __init__(self, cluster, quick_checks: bool = True):
        self.cluster = cluster
        self.quick_checks = quick_checks
        self.oracle = ShadowOracle(cluster.env)
        self.violations: list[Violation] = []
        self.total_violations = 0
        self._seen: set = set()
        #: (mn, pid, va) -> [HistoryOp] for the linearizability checker.
        self.atomic_histories: dict = {}
        self._atomic_meta: dict = {}   # token op_id -> HistoryOp placeholder
        self._slowpath_board: dict = {}
        self.sweeps = 0
        self._attached = False

    # -- lifecycle ------------------------------------------------------------

    def attach(self) -> "ClusterVerifier":
        for board in self.cluster.mns:
            board.verifier = self
            board.slow_path.verifier = self
            self._slowpath_board[id(board.slow_path)] = board
        for node in self.cluster.cns:
            node.verifier = self
        self._attached = True
        return self

    def detach(self) -> None:
        for board in self.cluster.mns:
            board.verifier = None
            board.slow_path.verifier = None
        for node in self.cluster.cns:
            node.verifier = None
        self._attached = False

    # -- violation recording ---------------------------------------------------

    def _record(self, violations: list[Violation]) -> None:
        for violation in violations:
            self.total_violations += 1
            key = (violation.invariant, violation.subject, violation.detail)
            if key in self._seen:
                continue
            self._seen.add(key)
            if len(self.violations) < self.MAX_VIOLATIONS:
                self.violations.append(violation)

    # -- CLib-side hooks (called from ClioThread, behind `is not None`) --------

    def read_begin(self, thread, va: int, size: int):
        process = thread.process
        return self.oracle.read_begin(process.mn, process.pid, va, size)

    def read_checked(self, token, data: bytes, retries: int) -> None:
        self.oracle.read_checked(token, data, retries)

    def read_failed(self, token) -> None:
        self.oracle.read_failed(token)

    def write_begin(self, thread, va: int, data: bytes):
        process = thread.process
        return self.oracle.write_begin(process.mn, process.pid, va, data)

    def write_acked(self, token, retries: int) -> None:
        self.oracle.write_acked(token, retries)

    def write_failed(self, token) -> None:
        self.oracle.write_failed(token)

    def atomic_begin(self, thread, va: int, op):
        process = thread.process
        token = self.oracle.atomic_begin(process.mn, process.pid, va, op)
        token.client = thread.label
        return token

    def atomic_acked(self, token, result, retries: int) -> None:
        self.oracle.atomic_acked(token, result, retries)
        self._history_for(token).append(HistoryOp(
            client=token.client, action=_atomic_action(token.op),
            result=(result.old_value, result.success),
            start_ns=token.started_ns, end_ns=self.oracle.env.now,
            completed=True))

    def atomic_failed(self, token, maybe_applied: bool) -> None:
        if not maybe_applied:
            # Rejected before execution (bad VA/permission): the op never
            # reached the word, so it does not belong in the history.
            return
        self.oracle.atomic_failed(token)
        self._history_for(token).append(HistoryOp(
            client=token.client, action=_atomic_action(token.op),
            start_ns=token.started_ns, completed=False))

    def _history_for(self, token) -> list:
        key = (token.mn, token.pid, token.va)
        history = self.atomic_histories.get(key)
        if history is None:
            history = self.atomic_histories[key] = []
        return history

    def alloc_done(self, thread, va: int, size: int) -> None:
        process = thread.process
        self.oracle.region_cleared(process.mn, process.pid, va, size)

    def free_done(self, thread, va: int, size: int) -> None:
        process = thread.process
        self.oracle.region_cleared(process.mn, process.pid, va, size)

    # -- board-side hooks -------------------------------------------------------

    def on_board_request(self, board) -> None:
        if self.quick_checks:
            problems = quick_check_board(board)
            if problems:
                self._record(problems)

    def on_board_crash(self, board) -> None:
        self.oracle.on_board_crash(board.name)

    def on_board_restart(self, board) -> None:
        self.oracle.on_board_restart(board.name)

    def on_metadata_op(self, slow_path) -> None:
        """Full board sweep after every alloc/free — the operations that
        move pages between the free list, the async buffer, and PTEs."""
        board = self._slowpath_board.get(id(slow_path))
        if board is not None:
            self._record(check_board(board))

    def on_region_migrated(self, lease, old_mn: str, old_va: int) -> None:
        self.oracle.region_remapped(lease.pid, old_mn, old_va,
                                    lease.mn, lease.va, lease.size)

    def on_region_evicted(self, lease, old_mn: str, old_va: int) -> None:
        """A region was re-homed off a dead board *without* a copy.

        Unlike a migration nothing moves: the old data is gone with the
        board and the new allocation reads as zero, so the shadow drops
        the stale cells on both sides instead of remapping them.
        """
        self.oracle.region_cleared(old_mn, lease.pid, old_va, lease.size)
        self.oracle.region_cleared(lease.mn, lease.pid, lease.va, lease.size)

    # -- sweeps and verdicts -----------------------------------------------------

    def sweep(self) -> list[Violation]:
        """Full invariant pass over every board and transport."""
        self.sweeps += 1
        found = check_cluster(self.cluster)
        self._record(found)
        return found

    def check_atomic_histories(self, max_states: int = 500_000) -> dict:
        """Run the linearizability checker on every captured word."""
        return {key: check_history(history, AtomicWordModel,
                                   max_states=max_states)
                for key, history in self.atomic_histories.items()}

    @property
    def ok(self) -> bool:
        return self.oracle.ok and self.total_violations == 0

    def report(self) -> dict:
        """JSON-able digest of everything the verifier observed."""
        out = dict(self.oracle.report())
        out["invariant_violations"] = self.total_violations
        out["violations"] = [v.describe() for v in self.violations[:20]]
        out["sweeps"] = self.sweeps
        out["atomic_words_tracked"] = len(self.atomic_histories)
        return out


def _atomic_action(op) -> tuple:
    """AtomicOp -> the spec-level action tuple AtomicWordModel takes."""
    if op.kind == "tas":
        return ("tas",)
    if op.kind == "cas":
        return ("cas", op.expected, op.value)
    if op.kind == "faa":
        return ("faa", op.value)
    return ("store", op.value)


def spans_near(tracer, at_ns: int, window_ns: int = 3000,
               limit: int = 6) -> list[str]:
    """Telemetry spans overlapping ``at_ns`` — context for a violation."""
    if tracer is None:
        return []
    hits = []
    for span in tracer.spans:
        start = span.start_ns
        end = span.end_ns if span.end_ns is not None else at_ns
        if start - window_ns <= at_ns <= end + window_ns:
            hits.append(f"  span {span.name} [{span.track}] "
                        f"{start}..{span.end_ns} {span.args or ''}")
            if len(hits) >= limit:
                break
    return hits


# -- canned verification workloads ---------------------------------------------


@dataclass
class VerifyRunResult:
    """Outcome of one verification workload."""

    name: str
    lin: Optional[LinearizeResult]
    history_len: int
    violations: list = field(default_factory=list)
    report: dict = field(default_factory=dict)
    tracer: object = None
    notes: list = field(default_factory=list)
    #: Workload-specific structured results (fingerprints, latency
    #: percentiles, ...) — absent for the older harnesses.
    extras: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        if self.lin is not None and self.lin.ok is False:
            return False
        if self.violations:
            return False
        if self.report.get("read_mismatches") or self.report.get(
                "epoch_violations"):
            return False
        return True

    def problems(self) -> list[str]:
        out = []
        if self.lin is not None and self.lin.ok is False:
            out.append(f"{self.name}: history is NOT linearizable "
                       f"({self.lin.reason})")
        out.extend(f"{self.name}: {v.describe()}" for v in self.violations)
        out.extend(f"{self.name}: {m}" for m in
                   self.report.get("mismatch_details", []))
        out.extend(f"{self.name}: {e}" for e in
                   self.report.get("epoch_details", []))
        return out


def _verify_params() -> ClioParams:
    """Chaos-scale failure timeouts (see faults.scenarios._chaos_params)."""
    params = ClioParams.prototype()
    return replace(params, clib=replace(params.clib, timeout_ns=20 * US,
                                        slow_timeout_ns=1 * MS,
                                        max_retries=3))


#: Shared-word PID for the sync-unit harness; clients on every CN open a
#: process with this PID so they address the same RAS.
_SYNC_PID = 7701
_KV_PID_BASE = 8801


def run_sync_linearizability(seed: int = 0, num_clients: int = 3,
                             ops_per_client: int = 30, crash: bool = True,
                             mutate: Optional[Callable] = None,
                             trace: bool = True,
                             deadline_ns: int = 50 * MS,
                             partitioned: bool = False) -> VerifyRunResult:
    """Hammer one atomic word from ``num_clients`` CNs; check the history.

    With ``crash=True`` the board crashes mid-run for 200 us — long
    enough that every attempt of an op in flight at the crash expires
    against the dark port (20/40/80/160 us backoff), so no acknowledged
    op can be a silent pre-crash double-execution; those ops fail and
    enter the history as indeterminate.  ``mutate(cluster)`` runs after
    the verifier attaches — the seeded-bug tests use it to break the
    machinery and prove the checkers can fail.
    """
    from repro.cluster import ClioCluster
    from repro.core.sync import AtomicOp
    from repro.faults.injector import FaultInjector
    from repro.faults.schedule import FaultSchedule
    from repro.sim.rng import RandomStream
    from repro.transport.clib_transport import RequestFailed
    from repro.clib.client import RemoteAccessError

    cluster = ClioCluster(params=_verify_params(), seed=seed,
                          num_cns=num_clients, mn_capacity=64 * MB,
                          partitioned=partitioned)
    verifier = cluster.enable_verification()
    if trace:
        cluster.enable_tracing()
    if mutate is not None:
        mutate(cluster)
    env = cluster.env
    rng = RandomStream(seed, "verify/sync")

    threads = [cluster.cn(i).process("mn0", pid=_SYNC_PID).thread()
               for i in range(num_clients)]

    # Client 0 allocates the shared page; the word starts zeroed.
    setup = {}

    def setup_proc():
        va = yield from threads[0].ralloc(4096)
        setup["va"] = va

    cluster.run(until=env.process(setup_proc()))
    word_va = setup["va"]

    done_events = [env.event() for _ in range(num_clients)]

    def client(index: int):
        thread = threads[index]
        crng = rng.fork(f"client{index}")
        try:
            for _ in range(ops_per_client):
                roll = crng.uniform()
                if roll < 0.40:
                    op = AtomicOp(kind="faa",
                                  value=crng.uniform_int(1, 3))
                elif roll < 0.65:
                    op = AtomicOp(kind="cas",
                                  expected=crng.uniform_int(0, 3),
                                  value=crng.uniform_int(0, 3))
                elif roll < 0.85:
                    op = AtomicOp(kind="tas")
                else:
                    op = AtomicOp(kind="store",
                                  value=crng.uniform_int(0, 3))
                try:
                    yield from thread._atomic(word_va, op)
                except (RequestFailed, RemoteAccessError):
                    pass
                yield env.timeout(crng.uniform_int(50, 800))
        finally:
            done_events[index].succeed()

    for index in range(num_clients):
        env.process(client(index))
    if crash:
        injector = FaultInjector(cluster, FaultSchedule().crash_board(
            60 * US, "mn0", restart_after_ns=200 * US))
        injector.arm()

    all_done = env.all_of(done_events)
    cluster.run(until=deadline_ns)
    notes = [] if all_done.triggered else ["workload hit the deadline"]
    if crash:
        notes.append("board-crash window 60us..260us spanned the run")

    history = verifier.atomic_histories.get(("mn0", _SYNC_PID, word_va), [])
    lin = check_history(history, AtomicWordModel)
    verifier.sweep()
    return VerifyRunResult(name="sync-unit", lin=lin,
                           history_len=len(history),
                           violations=list(verifier.violations),
                           report=verifier.report(),
                           tracer=cluster.tracer, notes=notes)


def run_kv_linearizability(seed: int = 0, num_clients: int = 2,
                           ops_per_client: int = 30, crash: bool = True,
                           keys: int = 6, trace: bool = True,
                           deadline_ns: int = 100 * MS,
                           partitioned: bool = False) -> VerifyRunResult:
    """Clio-KV get/put under a YCSB-A-style 50/50 mix; check the history.

    Values are fixed-width so every post-load put is an in-place update:
    Clio-KV's growing-update path (unlink old, link new) is only
    read-committed, while in-place updates are single-write atomic and
    the whole workload is linearizable.  The harness records the history
    itself (KV ops ride OFFLOAD packets, which the CLib data hooks do
    not see): a failed put is kept as indeterminate — a crash may have
    eaten the response after the mutation applied — and a failed get is
    dropped (reads have no effect).
    """
    from repro.apps.kv_store import ClioKV, register_kv_offload
    from repro.cluster import ClioCluster
    from repro.faults.injector import FaultInjector
    from repro.faults.schedule import FaultSchedule
    from repro.sim.rng import RandomStream
    from repro.transport.clib_transport import RequestFailed
    from repro.clib.client import RemoteAccessError

    cluster = ClioCluster(params=_verify_params(), seed=seed,
                          num_cns=num_clients, mn_capacity=128 * MB,
                          partitioned=partitioned)
    verifier = cluster.enable_verification()
    if trace:
        cluster.enable_tracing()
    env = cluster.env
    rng = RandomStream(seed, "verify/kv")
    register_kv_offload(cluster.mn.extend_path)

    kvs = [ClioKV(cluster.cn(i).process("mn0", pid=_KV_PID_BASE + i).thread())
           for i in range(num_clients)]
    key_names = [f"key{k:02d}".encode() for k in range(keys)]
    history: list[HistoryOp] = []

    def value_bytes(client: int, sequence: int) -> bytes:
        return (client * 1_000_000 + sequence).to_bytes(8, "little")

    def load():
        # Single-client load phase: every key exists before contention.
        for k, key in enumerate(key_names):
            start = env.now
            yield from kvs[0].put(key, value_bytes(0, k))
            history.append(HistoryOp(
                client="load", action=("put", key, value_bytes(0, k)),
                result="ok", start_ns=start, end_ns=env.now))

    cluster.run(until=env.process(load()))

    done_events = [env.event() for _ in range(num_clients)]

    def client(index: int):
        kv = kvs[index]
        crng = rng.fork(f"kv{index}")
        label = f"cn{index}"
        try:
            for op_index in range(ops_per_client):
                key = key_names[crng.uniform_int(0, keys - 1)]
                start = env.now
                if crng.uniform() < 0.5:
                    try:
                        value = yield from kv.get(key)
                    except (RequestFailed, RemoteAccessError):
                        continue     # reads have no effect: drop
                    history.append(HistoryOp(
                        client=label, action=("get", key), result=value,
                        start_ns=start, end_ns=env.now))
                else:
                    payload = value_bytes(index + 1, op_index)
                    action = ("put", key, payload)
                    try:
                        yield from kv.put(key, payload)
                    except (RequestFailed, RemoteAccessError):
                        history.append(HistoryOp(
                            client=label, action=action,
                            start_ns=start, completed=False))
                        continue
                    history.append(HistoryOp(
                        client=label, action=action, result="ok",
                        start_ns=start, end_ns=env.now))
                yield env.timeout(crng.uniform_int(100, 2000))
        finally:
            done_events[index].succeed()

    for index in range(num_clients):
        env.process(client(index))
    if crash:
        injector = FaultInjector(cluster, FaultSchedule().crash_board(
            150 * US, "mn0", restart_after_ns=500 * US))
        injector.arm()

    all_done = env.all_of(done_events)
    cluster.run(until=deadline_ns)
    notes = [] if all_done.triggered else ["workload hit the deadline"]
    if crash:
        notes.append("board-crash window 150us..650us spanned the run")

    lin = check_history(history, KVModel)
    verifier.sweep()
    return VerifyRunResult(name="clio-kv", lin=lin,
                           history_len=len(history),
                           violations=list(verifier.violations),
                           report=verifier.report(),
                           tracer=cluster.tracer, notes=notes)


#: PID range for the batched-YCSB harness (pinned: PIDs feed the PT hash).
_BATCH_PID_BASE = 9901


def run_batched_ycsb(seed: int = 0, num_clients: int = 2,
                     ops_per_client: int = 80, keys: int = 64,
                     value_size: int = 64, batch_max_ops: int = 8,
                     window_ns: int = 400, trace: bool = True,
                     deadline_ns: int = 100 * MS,
                     partitioned: bool = False) -> VerifyRunResult:
    """YCSB-A over raw rread/rwrite with per-thread batching enabled.

    The repro.batch acceptance workload: every client opts into the
    adaptive batcher, so the 50/50 get/set mix rides multi-op frames,
    and all three checking layers must stay clean over the batched
    histories — the oracle audits every batched read against shadow
    memory, quick/board invariants run per request, and a shared atomic
    word (bumped between batches) feeds the linearizability checker.
    Clients use byte-granular ordering so independent keys in one 4 MB
    page actually coalesce instead of serializing on false conflicts.
    """
    from repro.cluster import ClioCluster
    from repro.sim.rng import RandomStream
    from repro.workloads.ycsb import YCSB_WORKLOADS, YCSBWorkload
    from repro.transport.clib_transport import RequestFailed
    from repro.clib.client import RemoteAccessError

    cluster = ClioCluster(params=_verify_params(), seed=seed,
                          num_cns=num_clients, mn_capacity=128 * MB,
                          partitioned=partitioned)
    verifier = cluster.enable_verification()
    if trace:
        cluster.enable_tracing()
    env = cluster.env
    rng = RandomStream(seed, "verify/batched-ycsb")

    threads = [
        cluster.cn(i).process("mn0", pid=_BATCH_PID_BASE + i)
        .thread(ordering_granularity="byte")
        for i in range(num_clients)
    ]
    sync_threads = [cluster.cn(i).process("mn0", pid=_SYNC_PID).thread()
                    for i in range(num_clients)]

    setup = {}

    def setup_proc():
        # Per-client data regions plus the shared word for the linearizer.
        regions = []
        for thread in threads:
            va = yield from thread.ralloc(keys * value_size)
            regions.append(va)
        setup["regions"] = regions
        setup["word"] = yield from sync_threads[0].ralloc(4096)

    cluster.run(until=env.process(setup_proc()))
    regions, word_va = setup["regions"], setup["word"]
    done_events = [env.event() for _ in range(num_clients)]
    batch_stats = {"frames": 0, "subops": 0}

    def client(index: int):
        thread = threads[index]
        region = regions[index]
        workload = YCSBWorkload(YCSB_WORKLOADS["A"],
                                rng.fork(f"client{index}"),
                                num_keys=keys, value_size=value_size)
        batcher = thread.enable_batching(max_ops=batch_max_ops,
                                         window_ns=window_ns)
        inflight = []
        try:
            for serial, op in enumerate(workload.operations(ops_per_client)):
                key_index = int(op[1][4:])
                va = region + key_index * value_size
                if op[0] == "set":
                    handle = yield from thread.rwrite_async(va, op[2])
                else:
                    handle = yield from thread.rread_async(va, value_size)
                inflight.append(handle)
                if len(inflight) >= 2 * batch_max_ops:
                    completions = yield from thread.rpoll(inflight)
                    inflight = []
                    for completion in completions:
                        completion.result   # no faults here: all must land
                if serial % 8 == 7:
                    # Contended sync between batches: linearizer food.
                    try:
                        yield from sync_threads[index].rfaa(word_va, 1)
                    except (RequestFailed, RemoteAccessError):
                        pass
            thread._flush_batches()
            completions = yield from thread.rpoll(inflight)
            for completion in completions:
                completion.result
        finally:
            batch_stats["frames"] += batcher.frames_issued
            batch_stats["subops"] += batcher.subops_batched
            done_events[index].succeed()

    for index in range(num_clients):
        env.process(client(index))
    all_done = env.all_of(done_events)
    cluster.run(until=deadline_ns)
    notes = [] if all_done.triggered else ["workload hit the deadline"]
    notes.append(f"batched {batch_stats['subops']} sub-ops into "
                 f"{batch_stats['frames']} frames")

    history = verifier.atomic_histories.get(("mn0", _SYNC_PID, word_va), [])
    lin = check_history(history, AtomicWordModel)
    verifier.sweep()
    return VerifyRunResult(name="batched-ycsb-a", lin=lin,
                           history_len=len(history),
                           violations=list(verifier.violations),
                           report=verifier.report(),
                           tracer=cluster.tracer, notes=notes)


#: Shared-region PID for the cached-YCSB harness: every client opens the
#: SAME pid so their key ranges overlap and coherence traffic actually
#: crosses CNs (fills steal ownership, writes recall sharers).
_CACHE_PID = 9601


def run_cached_ycsb(seed: int = 0, num_clients: int = 2,
                    ops_per_client: int = 80, keys: int = 64,
                    value_size: int = 64, policy: str = "through",
                    line_bytes: int = 512, capacity_lines: int = 8,
                    crash: bool = False, migrate: bool = False,
                    trace: bool = True, deadline_ns: int = 100 * MS,
                    partitioned: bool = False) -> VerifyRunResult:
    """YCSB-A over ONE shared cached region; all three checkers run.

    The repro.cache acceptance workload: every client maps the same PID
    and the same key range, so the zipf-hot keys ping-pong between CN
    caches — fills, recalls, downgrades, evictions (capacity is set well
    below the working set) all fire while the shadow oracle audits every
    byte and a shared atomic word feeds the linearizability checker.

    ``crash=True`` crashes the board mid-run while lines are cached (and
    dirty, under ``policy="back"``): in-flight uncached ops fail typed,
    local hits keep serving from CN DRAM, and flushes retry until the
    board restarts.  ``migrate=True`` runs a two-MN cluster under a
    :class:`~repro.distributed.controller.GlobalController` and migrates
    the region at ~1.5 ms; the directory freeze must recall every cached
    line (flushing dirty data to the *source*) before the copy, and
    clients refresh the lease when the old board rejects them.
    """
    from repro.cluster import ClioCluster
    from repro.sim.rng import RandomStream
    from repro.workloads.ycsb import YCSB_WORKLOADS, YCSBWorkload
    from repro.transport.clib_transport import RequestFailed
    from repro.clib.client import RemoteAccessError

    cluster = ClioCluster(params=_verify_params(), seed=seed,
                          num_cns=num_clients, num_mns=2 if migrate else 1,
                          mn_capacity=128 * MB, partitioned=partitioned)
    verifier = cluster.enable_verification()
    cluster.enable_caching(policy=policy, line_bytes=line_bytes,
                           capacity_lines=capacity_lines)
    if trace:
        cluster.enable_tracing()
    env = cluster.env
    rng = RandomStream(seed, "verify/cached-ycsb")

    controller = None
    lease = None
    if migrate:
        from repro.distributed.controller import GlobalController
        controller = GlobalController(env, cluster.mns)
        controller.verifier = verifier
        controller.cache_directory = cluster.cache_dir
        # One data thread per (CN, board): clients re-resolve the lease
        # before every op and pick the thread bound to its current home.
        threads = [{board.name:
                    cluster.cn(i).process(board.name, pid=_CACHE_PID)
                    .thread() for board in cluster.mns}
                   for i in range(num_clients)]
    else:
        threads = [{"mn0": cluster.cn(i).process("mn0", pid=_CACHE_PID)
                    .thread()} for i in range(num_clients)]
    sync_threads = [cluster.cn(i).process("mn0", pid=_SYNC_PID).thread()
                    for i in range(num_clients)]

    setup = {}

    def setup_proc():
        if migrate:
            got = yield from controller.allocate(_CACHE_PID,
                                                 keys * value_size)
            # The controller allocates board-side (no CLib thread, so no
            # alloc_done hook fires); clear the shadow region by hand.
            verifier.oracle.region_cleared(got.mn, _CACHE_PID, got.va,
                                           got.size)
            setup["lease"] = got
        else:
            setup["va"] = yield from threads[0]["mn0"].ralloc(
                keys * value_size)
        setup["word"] = yield from sync_threads[0].ralloc(4096)

    cluster.run(until=env.process(setup_proc()))
    if migrate:
        lease = setup["lease"]
    word_va = setup["word"]
    done_events = [env.event() for _ in range(num_clients)]
    tolerated = {"count": 0}

    def client(index: int):
        workload = YCSBWorkload(YCSB_WORKLOADS["A"],
                                rng.fork(f"client{index}"),
                                num_keys=keys, value_size=value_size)
        try:
            for serial, op in enumerate(workload.operations(ops_per_client)):
                key_index = int(op[1][4:])
                if migrate:
                    thread = threads[index][lease.mn]
                    va = lease.va + key_index * value_size
                else:
                    thread = threads[index]["mn0"]
                    va = setup["va"] + key_index * value_size
                try:
                    if op[0] == "set":
                        yield from thread.rwrite(va, op[2])
                    else:
                        yield from thread.rread(va, value_size)
                except (RequestFailed, RemoteAccessError):
                    tolerated["count"] += 1
                if serial % 8 == 7:
                    # Contended word between cached ops: linearizer food
                    # (and it exercises the atomic write-guard path).
                    try:
                        yield from sync_threads[index].rfaa(word_va, 1)
                    except (RequestFailed, RemoteAccessError):
                        tolerated["count"] += 1
                yield env.timeout(100 + 37 * index)
        finally:
            done_events[index].succeed()

    for index in range(num_clients):
        env.process(client(index))
    if crash:
        from repro.faults.injector import FaultInjector
        from repro.faults.schedule import FaultSchedule
        injector = FaultInjector(cluster, FaultSchedule().crash_board(
            150 * US, "mn0", restart_after_ns=500 * US))
        injector.arm()
    if migrate:
        def mover():
            yield env.timeout(1_500 * US)
            target = "mn1" if lease.mn == "mn0" else "mn0"
            yield from controller._migrate(lease, target)
        env.process(mover())

    all_done = env.all_of(done_events)
    cluster.run(until=deadline_ns)
    notes = [] if all_done.triggered else ["workload hit the deadline"]
    hits = sum(node.cache.hits for node in cluster.cns)
    misses = sum(node.cache.misses for node in cluster.cns)
    writebacks = sum(node.cache.writebacks for node in cluster.cns)
    invals = sum(node.cache.invalidations for node in cluster.cns)
    notes.append(f"cache[{policy}]: {hits} hits / {misses} misses, "
                 f"{invals} invalidations, {writebacks} writebacks")
    if tolerated["count"]:
        notes.append(f"{tolerated['count']} ops failed typed (tolerated)")
    if crash:
        notes.append("board-crash window 150us..650us spanned the run")
    if migrate and controller.migrations:
        notes.append(f"region migrated to {lease.mn} at ~1.5ms mid-run")

    # Drain: flush every dirty line and depart the directory, so the
    # final sweep sees a cluster with no cached state outstanding.
    drains = cluster.disable_caching(drain=True)
    if drains:
        env.run(until=deadline_ns + 1 * MS)
        if not all(process.triggered for process in drains):
            notes.append("cache drain did not settle before the deadline")

    history = verifier.atomic_histories.get(("mn0", _SYNC_PID, word_va), [])
    lin = check_history(history, AtomicWordModel)
    verifier.sweep()
    name = "cached-ycsb-a[%s%s%s]" % (policy, "+crash" if crash else "",
                                      "+migrate" if migrate else "")
    return VerifyRunResult(name=name, lin=lin, history_len=len(history),
                           violations=list(verifier.violations),
                           report=verifier.report(),
                           tracer=cluster.tracer, notes=notes)


#: Shared-region PID for the rack harness: every client on every CN maps
#: the same PID, so region VAs are valid from any CN toward any board.
_RACK_PID = 7401

#: Membership scenarios run_rack_ycsb understands (None = steady state).
RACK_SCENARIOS = ("drain", "add", "crash-mid-migration", "evict")


def run_rack_ycsb(seed: int = 0, boards: int = 8, tors: int = 2,
                  num_cns: int = 4, clients: int = 1024,
                  ops_per_client: int = 4, regions_per_board: int = 2,
                  value_size: int = 64, theta: float = 0.99,
                  scenario: Optional[str] = None,
                  trace: bool = False, deadline_ns: int = 60 * MS,
                  partitioned: bool = False) -> VerifyRunResult:
    """Zipfian YCSB against a sharded rack while membership churns.

    The rack acceptance workload: ``clients`` generator processes spread
    over ``num_cns`` CNs hammer ``boards * regions_per_board`` regions
    (zipf-hot, so traffic concentrates) that the rack tier placed via the
    shard ring, while a scenario event reshapes membership mid-run:

    * ``"drain"`` — a board drains under traffic (batched rate-limited
      live migrations; its write-fenced regions briefly reject writes);
    * ``"add"`` — a spare joins and the rebalancer pulls arcs over;
    * ``"crash-mid-migration"`` — the board crashes while its own drain
      is copying regions out, the in-flight migrations abort and roll
      back, and the drain is retried after the board recovers;
    * ``"evict"`` — the board crashes for good; after its lease expires
      the membership sweep re-shards its regions zero-filled.

    All three checking layers run throughout: the shadow oracle audits
    every byte across migrations and evictions, board invariants hold,
    and a shared atomic word on a board no scenario touches feeds the
    linearizability checker.  Per-op latencies are recorded so callers
    can compare tail latency before and after the membership event, and
    ``extras["fingerprint"]`` digests the full op history — same seed,
    flat and partitioned engines must produce the same digest.
    """
    from hashlib import blake2b

    from repro.cluster import ClioCluster
    from repro.distributed.controller import LeaseLost
    from repro.rack import DrainError, RackConfig
    from repro.sim.rng import RandomStream
    from repro.workloads.zipf import ZipfTable, zipfian_keys
    from repro.transport.clib_transport import RequestFailed
    from repro.clib.client import RemoteAccessError

    if scenario is not None and scenario not in RACK_SCENARIOS:
        raise ValueError(f"unknown rack scenario {scenario!r} "
                         f"(choose from {RACK_SCENARIOS})")
    page = 64 * 1024
    num_regions = boards * regions_per_board
    config = RackConfig(boards=boards, tors=tors,
                        spares=1 if scenario == "add" else 0,
                        lease_expiry_ns=400 * US)
    cluster = ClioCluster(params=_verify_params(), seed=seed,
                          num_cns=num_cns, rack=config, page_size=page,
                          mn_capacity=2 * num_regions * page + 4 * MB,
                          partitioned=partitioned)
    cluster.rack.start()
    verifier = cluster.enable_verification()
    cluster.rack.controller.verifier = verifier
    if trace:
        cluster.enable_tracing()
    env = cluster.env
    rng = RandomStream(seed, "verify/rack")
    controller = cluster.rack.controller
    membership = cluster.rack.membership

    # One data thread per (CN, board) — clients re-resolve the lease
    # before every op and use the thread bound to its current home.
    # Spares included: regions migrate onto them mid-run.
    threads = [{board.name:
                cluster.cn(i).process(board.name, pid=_RACK_PID).thread()
                for board in cluster.mns}
               for i in range(num_cns)]
    sync_threads = [cluster.cn(i).process("mn0", pid=_SYNC_PID).thread()
                    for i in range(num_cns)]

    setup = {}

    def setup_proc():
        region_ids = []
        for _ in range(num_regions):
            lease = yield from controller.allocate(_RACK_PID, page)
            # Controller allocations are board-side (no CLib alloc hook
            # fires); clear the shadow region by hand.
            verifier.oracle.region_cleared(lease.mn, _RACK_PID, lease.va,
                                           lease.size)
            region_ids.append(lease.region_id)
        setup["region_ids"] = region_ids
        setup["word"] = yield from sync_threads[0].ralloc(4096)

    cluster.run(until=env.process(setup_proc()))
    region_ids, word_va = setup["region_ids"], setup["word"]
    slots = page // value_size

    done_events = [env.event() for _ in range(clients)]
    ztable = ZipfTable(num_regions, theta)
    #: (client, serial, kind, ok, start_ns, end_ns) per attempted op.
    op_log: list[tuple] = []
    tolerated = {"count": 0}

    # Staggered starts spread arrivals over ~2x the membership-event
    # time at any client count, so traffic straddles the event instead
    # of bursting at t=0 and finishing before anything happens.
    stagger_ns = max(200, 600_000 // clients)
    # Sync-word cadence: every 16th op at scale, but never less than one
    # atomic per client, so the linearizability history is never empty.
    sync_every = min(16, ops_per_client)

    def client(index: int):
        crng = rng.fork(f"rack{index}")
        cn_index = index % num_cns
        keys = zipfian_keys(crng, num_regions, theta, table=ztable)
        try:
            yield env.timeout(stagger_ns * index
                              + crng.uniform_int(0, stagger_ns - 1))
            for serial in range(ops_per_client):
                region_id = region_ids[next(keys)]
                slot = crng.uniform_int(0, slots - 1)
                kind = "set" if crng.uniform() < 0.5 else "get"
                payload = ((index << 20) | serial).to_bytes(
                    value_size, "little") if kind == "set" else None
                start = env.now
                ok = False
                for attempt in range(8):
                    try:
                        lease = controller.lookup(region_id)
                    except LeaseLost:
                        # Board believed dead: back off, then refresh.
                        yield env.timeout(30 * US + attempt * 20 * US)
                        continue
                    thread = threads[cn_index][lease.mn]
                    va = lease.va + slot * value_size
                    try:
                        if kind == "set":
                            yield from thread.rwrite(va, payload)
                        else:
                            yield from thread.rread(va, value_size)
                        ok = True
                        break
                    except (RequestFailed, RemoteAccessError):
                        # Stale lease, fenced write, or dark board:
                        # refresh the lease and retry.
                        yield env.timeout(10 * US + attempt * 10 * US)
                op_log.append((index, serial, kind, ok, start, env.now))
                if not ok:
                    tolerated["count"] += 1
                if serial % sync_every == sync_every - 1:
                    try:
                        yield from sync_threads[cn_index].rfaa(word_va, 1)
                    except (RequestFailed, RemoteAccessError):
                        pass
                yield env.timeout(crng.uniform_int(200, 2_000))
        finally:
            done_events[index].succeed()

    for index in range(clients):
        env.process(client(index))

    # Scenario driver: every event targets mn1 (never mn0, which hosts
    # the linearizer word, so its history has a single stable home).
    event_at = 300 * US                  # relative to the end of setup
    event_abs = env.now + event_at       # absolute sim time of the event
    scenario_notes: list[str] = []
    event_done = {"ns": event_abs}  # when the membership op settled

    def driver():
        yield env.timeout(event_at)
        if scenario == "drain":
            yield from membership.drain_board("mn1")
            scenario_notes.append(
                f"drained mn1 at {event_abs}ns "
                f"({controller.migrations} migrations)")
        elif scenario == "add":
            spare = cluster.rack.spare(0)
            moved = yield from membership.add_board(spare)
            scenario_notes.append(
                f"added {spare.name} at {event_abs}ns, rebalanced {moved}")
        elif scenario == "crash-mid-migration":
            def doomed_drain():
                # This drain is *expected* to fail: the board dies under
                # it, its in-flight copies abort, and regions remain.
                try:
                    yield from membership.drain_board("mn1")
                except DrainError:
                    pass
            drain_proc = env.process(doomed_drain())
            yield env.timeout(30 * US)   # let the first copies start
            cluster.board("mn1").crash()
            yield env.timeout(300 * US)
            cluster.board("mn1").restart()
            yield drain_proc
            # Health must re-trust the board before the retry can read it.
            while not cluster.health.is_alive("mn1"):
                yield env.timeout(50 * US)
            if "mn1" in controller._boards and controller.regions_on("mn1"):
                yield from membership.drain_board("mn1")
            scenario_notes.append(
                f"mn1 crashed mid-drain ({controller.aborted_migrations} "
                f"aborted), drain completed after restart")
        elif scenario == "evict":
            cluster.board("mn1").crash()
            scenario_notes.append(
                f"mn1 crashed at {event_abs}ns, never restarted "
                "(lease-expiry eviction)")
            # Recovery point = the sweep's eviction, not the crash.
            while membership.evictions == 0:
                yield env.timeout(50 * US)
        event_done["ns"] = env.now

    if scenario is not None:
        env.process(driver())

    all_done = env.all_of(done_events)
    cluster.run(until=deadline_ns)
    notes = [] if all_done.triggered else ["workload hit the deadline"]
    notes.extend(scenario_notes)
    if tolerated["count"]:
        notes.append(f"{tolerated['count']} ops failed typed (tolerated)")

    # Latency split around the membership event, for recovery checks.
    def p99(samples: list[int]) -> int:
        if not samples:
            return 0
        ordered = sorted(samples)
        return ordered[min(len(ordered) - 1, (len(ordered) * 99) // 100)]

    pre = [end - start for _, _, _, ok, start, end in op_log
           if ok and end <= event_abs]
    post = [end - start for _, _, _, ok, start, end in op_log
            if ok and start >= event_done["ns"]]
    digest = blake2b(digest_size=16)
    for record in op_log:
        digest.update(repr(record).encode())
    extras = {
        "fingerprint": digest.hexdigest(),
        "ops_attempted": len(op_log),
        "ops_ok": sum(1 for r in op_log if r[3]),
        "pre_p99_ns": p99(pre),
        "post_p99_ns": p99(post),
        "event_at_ns": event_abs,
        "event_done_ns": event_done["ns"],
        "migrations": controller.migrations,
        "aborted_migrations": controller.aborted_migrations,
        "evictions": membership.evictions,
        "epoch": membership.epoch,
        "placement": tuple(sorted(
            (region_id, lease.mn)
            for region_id, lease in controller._leases.items())),
        # Engine-side counters, for the perf suite.
        "sim_now_ns": env.now,
        "events": env._seq,
    }
    notes.append(f"{extras['ops_ok']}/{extras['ops_attempted']} ops ok, "
                 f"p99 {extras['pre_p99_ns']}ns pre / "
                 f"{extras['post_p99_ns']}ns post event")

    history = verifier.atomic_histories.get(("mn0", _SYNC_PID, word_va), [])
    lin = check_history(history, AtomicWordModel)
    verifier.sweep()
    name = "rack-ycsb" + (f"[{scenario}]" if scenario else "")
    return VerifyRunResult(name=name, lin=lin, history_len=len(history),
                           violations=list(verifier.violations),
                           report=verifier.report(),
                           tracer=cluster.tracer, notes=notes,
                           extras=extras)


def run_verified_chaos(scenario: str = "board-crash",
                       seed: int = 1234, **kwargs):
    """One chaos scenario with the full verifier attached."""
    from repro.faults.scenarios import run_chaos
    return run_chaos(scenario, seed=seed, verify=True, **kwargs)


#: PA strategies the allocator passes iterate over.
ALLOC_STRATEGIES = ("freelist", "slab", "buddy", "arena")


def run_alloc_churn(scenario: str = "small-large-mix",
                    pa_strategy: str = "freelist",
                    va_policy: str = "first-fit",
                    seed: int = 0, ops: Optional[int] = None,
                    partitioned: bool = False) -> VerifyRunResult:
    """One fragmentation/churn scenario with the full checking stack on.

    Every alloc/free triggers a complete board invariant sweep (PA
    conservation, double-map, free-while-mapped, plus the strategy's own
    ``check()`` audit), the shadow oracle mirrors every byte written, and
    ``extras["fingerprint"]`` digests the allocation history — the same
    seed must produce the same digest flat and partitioned, verified or
    not.
    """
    from repro.workloads.churn import run_churn

    report = run_churn(scenario, pa_strategy=pa_strategy,
                       va_policy=va_policy, seed=seed, ops=ops,
                       partitioned=partitioned, verify=True)
    extras = dict(report.summary())
    extras["sim_now_ns"] = report.now_ns
    extras["events"] = report.events
    notes = [
        f"{report.ops_ok}/{report.ops_attempted} allocs ok, "
        f"{report.frees} frees, {report.retries_total} VA retries, "
        f"{report.slow_crossings} slow-path crossings, "
        f"frag {report.fragmentation:.3f} (peak {report.fragmentation_peak:.3f})",
    ]
    name = f"alloc-churn[{report.scenario}/{pa_strategy}/{va_policy}]"
    return VerifyRunResult(name=name, lin=None,
                           history_len=report.ops_attempted + report.frees,
                           violations=list(report.violations),
                           report=report.verification,
                           notes=notes, extras=extras)


#: Tenant PIDs for the QoS harness: victim and aggressors address
#: disjoint regions, so the shadow oracle audits them independently.
_QOS_PID = 9901


def run_qos_noisy_neighbor(seed: int = 0, shaping: bool = True,
                           aggressors: int = 4, aggressor_pages: int = 8,
                           victim_ops: int = 400,
                           aggressor_write_bytes: int = 2048,
                           victim_share: float = 0.7,
                           trace: bool = False,
                           deadline_ns: int = 400 * MS,
                           partitioned: bool = False) -> VerifyRunResult:
    """Noisy-neighbor isolation under the full checking stack.

    One victim tenant (cn0) issues 64-byte reads against mn0 while an
    aggressor tenant (cn1..cnN) floods the same board with page-strided
    pipelined writes — each aggressor keeps ``2 * aggressor_pages``
    async writes in flight across distinct pages, so the dependency
    tracker never serializes them and the incast actually builds a
    standing queue on mn0's downlink.  The victim's read p99 is measured
    alone (phase A) and under fire (phase B):

    * ``shaping=False``: the aggressor burst parks on the shared egress
      serializer and victim p99 inflates several-fold — the congestion
      leak QoS exists to close;
    * ``shaping=True``: per-tenant GCRA shaping at the switch holds the
      victim's inflation to ~1.4x (the acceptance bar is <= 1.5x) while
      the aggressor queues in its own FIFO.

    The shadow oracle audits every byte both tenants move, board
    invariants sweep at the end, and ``extras["fingerprint"]`` digests
    the victim's op log plus per-aggressor completion counts — the same
    seed must produce the same digest flat and partitioned, shaped or
    not (shaping changes *timing*, which the digest includes, but flat
    vs partitioned must agree bit-for-bit at equal shaping).
    """
    from hashlib import blake2b

    from repro.cluster import ClioCluster
    from repro.params import QoSParams, TenantConfig

    aggressor_clients = tuple(f"cn{i + 1}" for i in range(aggressors))
    qos = QoSParams(tenants=(
        TenantConfig(name="victim", clients=("cn0",), share=victim_share),
        TenantConfig(name="aggressor", clients=aggressor_clients,
                     share=round(1.0 - victim_share, 6)),
    ))
    params = replace(ClioParams.prototype(), qos=qos)
    cluster = ClioCluster(params=params, seed=seed,
                          num_cns=1 + aggressors,
                          mn_capacity=max(256 * MB,
                                          2 * aggressors * aggressor_pages
                                          * params.cboard.default_page_size),
                          partitioned=partitioned)
    verifier = cluster.enable_verification()
    if shaping:
        cluster.enable_qos()
    if trace:
        cluster.enable_tracing()
    env = cluster.env
    page = cluster.mn.page_spec.page_size

    victim_thread = cluster.cn(0).process("mn0", pid=_QOS_PID).thread()
    aggressor_threads = [cluster.cn(i + 1).process("mn0", pid=_QOS_PID)
                         .thread() for i in range(aggressors)]

    # Prime every page both tenants touch, so phase latencies are
    # fault-free (first-touch faults would dominate the percentiles).
    setup = {"aggressor_vas": []}

    def setup_proc():
        setup["victim_va"] = yield from victim_thread.ralloc(page)
        yield from victim_thread.rwrite(setup["victim_va"], b"\0" * 64)
        for thread in aggressor_threads:
            va = yield from thread.ralloc(aggressor_pages * page)
            for offset in range(0, aggressor_pages * page, page):
                yield from thread.rwrite(va + offset, b"\0" * 64)
            setup["aggressor_vas"].append(va)

    cluster.run(until=env.process(setup_proc()))
    victim_va = setup["victim_va"]

    state = {"victim_baseline_done": False, "armed": 0, "done": False}
    base_lat: list[int] = []
    noisy_lat: list[int] = []
    aggressor_issued = [0] * aggressors
    done_events = [env.event() for _ in range(1 + aggressors)]

    def victim():
        try:
            for _ in range(victim_ops):
                start = env.now
                yield from victim_thread.rread(victim_va, 64)
                base_lat.append(env.now - start)
            state["victim_baseline_done"] = True
            while state["armed"] < aggressors:
                yield env.timeout(1_000)
            for _ in range(victim_ops):
                start = env.now
                yield from victim_thread.rread(victim_va, 64)
                noisy_lat.append(env.now - start)
        finally:
            state["done"] = True
            done_events[0].succeed()

    def aggressor(index: int):
        thread = aggressor_threads[index]
        va = setup["aggressor_vas"][index]
        payload = b"\xa5" * aggressor_write_bytes
        window: list = []
        try:
            while not state["victim_baseline_done"]:
                yield env.timeout(1_000)
            state["armed"] += 1
            serial = 0
            while not state["done"]:
                offset = (serial % aggressor_pages) * page
                handle = yield from thread.rwrite_async(va + offset, payload)
                window.append(handle)
                serial += 1
                aggressor_issued[index] = serial
                if len(window) >= 2 * aggressor_pages:
                    yield from thread.rpoll([window.pop(0)])
            if window:
                yield from thread.rpoll(window)
        finally:
            done_events[1 + index].succeed()

    env.process(victim())
    for index in range(aggressors):
        env.process(aggressor(index))

    all_done = env.all_of(done_events)
    cluster.run(until=deadline_ns)
    notes = [] if all_done.triggered else ["workload hit the deadline"]

    def p99(samples: list[int]) -> int:
        if not samples:
            return 0
        ordered = sorted(samples)
        return ordered[min(len(ordered) - 1, (len(ordered) * 99) // 100)]

    base_p99 = p99(base_lat)
    noisy_p99 = p99(noisy_lat)
    inflation = (noisy_p99 / base_p99) if base_p99 else 0.0
    digest = blake2b(digest_size=16)
    for latency in base_lat:
        digest.update(b"b%d" % latency)
    for latency in noisy_lat:
        digest.update(b"n%d" % latency)
    for issued in aggressor_issued:
        digest.update(b"a%d" % issued)
    shaper_stats = {node: shaper.stats()
                    for node, shaper in cluster.qos_shapers.items()}
    extras = {
        "fingerprint": digest.hexdigest(),
        "victim_base_p99_ns": base_p99,
        "victim_noisy_p99_ns": noisy_p99,
        "victim_p99_inflation": round(inflation, 3),
        "aggressor_ops": sum(aggressor_issued),
        "shaping": shaping,
        "shapers": shaper_stats,
        "sim_now_ns": env.now,
        "events": env._seq,
    }
    notes.append(
        f"victim p99 {base_p99}ns alone -> {noisy_p99}ns under fire "
        f"({inflation:.2f}x, shaping {'on' if shaping else 'off'}); "
        f"{sum(aggressor_issued)} aggressor writes")
    if shaping:
        shaped = sum(stats["tenants"]["aggressor"]["shaped"]
                     for stats in shaper_stats.values())
        notes.append(f"{shaped} aggressor packets shaped at the switch")

    verifier.sweep()
    name = "qos-noisy-neighbor[%s]" % ("shaped" if shaping else "unshaped")
    return VerifyRunResult(name=name, lin=None,
                           history_len=len(base_lat) + len(noisy_lat),
                           violations=list(verifier.violations),
                           report=verifier.report(),
                           tracer=cluster.tracer, notes=notes,
                           extras=extras)

"""Conservation and coherence invariants over live component state.

Each predicate inspects one component's state *read-only* and returns a
list of :class:`Violation` records (empty when healthy).  They are meant
to hold at event boundaries — every mutation the model makes between
yields leaves the structures consistent, so a checker invoked from a
hook or a sweep must find:

* **pa-conservation** — every physical page is in exactly one place:
  mapped behind a present PTE, on the free list, or pre-reserved in the
  async buffer.  ``present + free + reserved == total``.
* **pa-double-map / pa-free-while-mapped** — no PPN behind two present
  PTEs; no PPN simultaneously mapped and free.
* **tlb-coherence** — the TLB is a strict cache of the page table: every
  entry must match a *present* PTE with the same PPN and permission.
* **retry-ring-bound** — the dedup ring respects its byte budget (one of
  the MN's two bounded state guarantees).
* **write-progress** — multi-fragment write bookkeeping never goes
  negative or lingers at zero remaining.
* **sync-mutual-exclusion** — at most one atomic ever held the unit
  (``AtomicUnit.max_active``), the paper's single-atomic-unit claim.
* **inflight / fence** — the handler-chain count never goes negative.
* **transport-window** — per-CN: in-flight == sends − (acks +
  failures); the congestion controllers' outstanding sum equals the
  pending table size.

``check_board``/``check_transport`` are the full sweeps;
``quick_check_board`` is the O(1) subset cheap enough to run on every
request when a verifier is attached with ``quick_checks=True``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Violation:
    """One invariant breach, with enough context to localize it."""

    at_ns: int
    invariant: str
    subject: str      # component instance ("mn0", "cn1", ...)
    detail: str

    def describe(self) -> str:
        return (f"[{self.invariant}] {self.subject} at t={self.at_ns}: "
                f"{self.detail}")


def check_board(board) -> list[Violation]:
    """Full invariant sweep over one CBoard."""
    violations: list[Violation] = []
    now = board.env.now
    name = board.name

    def bad(invariant: str, detail: str) -> None:
        violations.append(Violation(now, invariant, name, detail))

    # Physical-page conservation and mapping sanity.
    table = board.page_table
    allocator = board.pa_allocator
    present_ppns: list[int] = []
    for entry in table._index.values():
        if entry.present:
            present_ppns.append(entry.ppn)
    free = allocator.free_pages
    reserved = allocator._reserved
    total = allocator.physical_pages
    if len(present_ppns) + free + reserved != total:
        bad("pa-conservation",
            f"present={len(present_ppns)} + free={free} + "
            f"reserved={reserved} != physical_pages={total}")
    present_set = set(present_ppns)
    if len(present_set) != len(present_ppns):
        bad("pa-double-map",
            f"{len(present_ppns) - len(present_set)} PPN(s) mapped by "
            "more than one present PTE")
    overlap = present_set.intersection(allocator.free_ppns())
    if overlap:
        bad("pa-free-while-mapped",
            f"PPNs both mapped and on the free list: "
            f"{sorted(overlap)[:8]}")
    # Strategy-internal audit: slab occupancy, buddy coalesce/alignment,
    # arena stash accounting, freelist duplicate detection.
    for tag, detail in allocator.check():
        bad(f"alloc-{tag}", detail)

    # TLB ⊆ page table (same PPN, same permission, present).
    for (pid, vpn), (ppn, permission) in board.tlb._entries.items():
        entry = table.lookup(pid, vpn)
        if entry is None or not entry.present:
            bad("tlb-coherence",
                f"TLB maps pid={pid} vpn={vpn} -> ppn={ppn} but the page "
                "table has no present PTE for it")
        elif entry.ppn != ppn or entry.permission != permission:
            bad("tlb-coherence",
                f"TLB pid={pid} vpn={vpn} says (ppn={ppn}, "
                f"{permission}) but PTE says (ppn={entry.ppn}, "
                f"{entry.permission})")

    # Retry-dedup ring stays inside its byte budget.
    ring = board.retry_buffer
    if len(ring) > ring.max_records or ring.bytes_used > ring.capacity_bytes:
        bad("retry-ring-bound",
            f"{len(ring)} records / {ring.bytes_used} B exceed "
            f"{ring.max_records} records / {ring.capacity_bytes} B")

    # Multi-fragment write bookkeeping.
    for request_id, progress in board._write_progress.items():
        if progress.remaining < 1:
            bad("write-progress",
                f"request {request_id} has remaining={progress.remaining}")

    # The single atomic unit never admits two atomics at once.
    unit = board.atomic_unit
    if unit.max_active > 1:
        bad("sync-mutual-exclusion",
            f"atomic unit admitted {unit.max_active} concurrent ops")

    if board._inflight < 0:
        bad("inflight", f"handler-chain count is {board._inflight}")

    return violations


def quick_check_board(board) -> list[Violation]:
    """O(1) subset of :func:`check_board`, safe to run per-request."""
    violations: list[Violation] = []
    now = board.env.now
    if board.atomic_unit.max_active > 1:
        violations.append(Violation(
            now, "sync-mutual-exclusion", board.name,
            f"atomic unit admitted {board.atomic_unit.max_active} "
            "concurrent ops"))
    if board._inflight < 0:
        violations.append(Violation(
            now, "inflight", board.name,
            f"handler-chain count is {board._inflight}"))
    ring = board.retry_buffer
    if len(ring) > ring.max_records:
        violations.append(Violation(
            now, "retry-ring-bound", board.name,
            f"{len(ring)} records exceed {ring.max_records}"))
    return violations


def check_transport(node) -> list[Violation]:
    """Window accounting on one compute node's CLib transport."""
    violations: list[Violation] = []
    transport = node.transport
    now = node.env.now
    name = node.name

    def bad(invariant: str, detail: str) -> None:
        violations.append(Violation(now, invariant, name, detail))

    outstanding = 0
    for mn, controller in transport._congestion.items():
        if controller.outstanding < 0:
            bad("transport-window",
                f"negative outstanding ({controller.outstanding}) "
                f"towards {mn}")
        outstanding += controller.outstanding
    if outstanding != len(transport._pending):
        bad("transport-window",
            f"congestion outstanding sum {outstanding} != "
            f"{len(transport._pending)} pending requests")

    settled = transport.requests_completed + transport.requests_failed
    if transport.requests_issued < settled:
        bad("transport-conservation",
            f"issued={transport.requests_issued} < completed+failed="
            f"{settled}")
    if transport.requests_issued - settled < len(transport._pending):
        bad("transport-conservation",
            f"issued−settled={transport.requests_issued - settled} "
            f"cannot cover {len(transport._pending)} pending requests")
    return violations


def check_cluster(cluster) -> list[Violation]:
    """Every board plus every CN transport."""
    violations: list[Violation] = []
    for board in cluster.mns:
        violations.extend(check_board(board))
    for node in cluster.cns:
        violations.extend(check_transport(node))
    return violations

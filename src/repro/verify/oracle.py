"""Shadow-memory oracle: a CLib-level mirror of every acknowledged write.

The oracle keeps a per-byte shadow of each (MN, PID) address space and
checks every *completed* read against it.  The model must be exactly as
strong as the system's guarantees — no stronger, or healthy concurrent
runs would false-positive; no weaker, or real corruption would slip by:

* A byte's **committed** value is the payload of the last *acknowledged*
  write covering it.  A read whose window ``[start, end]`` begins after
  the commit must observe it (read-your-writes through retransmission,
  crash, and migration).
* Writes **in flight** at the read's completion (issued, unacked) may or
  may not be visible — the MN may have applied them already.
* Commits landing **inside** the read window are acceptable too, as is
  the last commit before the window (the read may have been served
  before or after them).  A bounded per-byte history supports this; if
  the history was evicted past the window the byte is counted
  *unchecked* rather than guessed at.
* A **failed** write (retries exhausted) may have applied at the MN even
  though the client saw an error — the epoch model deliberately lets a
  crash discard the *response* while DRAM keeps the data.  Its bytes
  become *ghosts*: acceptable until the next acknowledged write commits
  over them.
* **Atomics** update the shadow word from the acknowledged
  ``(old, success)`` result — retransmission-aware by construction: the
  client acks an atomic exactly once however many retries it took, so a
  dedup failure at the MN (double-applied ``faa``) makes later observed
  old-values diverge from the mirror.
* **Epoch fencing**: a board crash/restart pair is recorded; any op
  acknowledged with *zero* retransmissions whose lifetime spans an
  entire crash→restart window is reported — a pre-crash in-flight op
  became visible post-fence, which the epoch discard must prevent.

Recording is passive: no events, no RNG, wall-clock/memory cost only —
the same zero-cost contract as telemetry (hooks behind one
``is not None`` check; ``tests/verify/test_chaos_oracle.py`` pins the
fingerprint invariance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.sync import ATOMIC_WIDTH, AtomicOp, AtomicUnit


@dataclass(frozen=True)
class ReadMismatch:
    """One byte of a completed read that no legal history explains."""

    at_ns: int
    mn: str
    pid: int
    va: int            # absolute byte address of the mismatch
    observed: int
    acceptable: tuple  # sorted acceptable byte values at check time
    started_ns: int
    note: str = ""

    def describe(self) -> str:
        return (f"read mismatch at t={self.at_ns} {self.mn}/pid{self.pid} "
                f"va={self.va:#x}: observed {self.observed:#04x}, "
                f"acceptable {sorted(self.acceptable)} "
                f"(window {self.started_ns}..{self.at_ns}){self.note}")


@dataclass(frozen=True)
class EpochViolation:
    """A zero-retry ack whose lifetime spans a full crash→restart window."""

    at_ns: int
    mn: str
    pid: int
    va: int
    kind: str          # "read" | "write" | "atomic"
    started_ns: int
    crash_ns: int
    restart_ns: int

    def describe(self) -> str:
        return (f"epoch violation at t={self.at_ns}: {self.kind} on "
                f"{self.mn}/pid{self.pid} va={self.va:#x} issued at "
                f"{self.started_ns} was acknowledged without retransmission "
                f"across crash window [{self.crash_ns}, {self.restart_ns}] "
                "— a pre-crash in-flight op became visible post-fence")


@dataclass
class OpToken:
    """Handle linking an in-flight client op to its shadow bookkeeping."""

    op_id: int
    kind: str                 # "read" | "write" | "atomic"
    mn: str
    pid: int
    va: int
    started_ns: int
    data: bytes = b""
    size: int = 0
    op: Optional[AtomicOp] = None
    client: str = ""          # filled by the verifier for history capture


class _Cell:
    """Shadow state of one byte of one (MN, PID) address space."""

    __slots__ = ("committed", "committed_at", "history", "evicted",
                 "pending", "ghosts", "atomic_ok", "tainted")

    def __init__(self):
        self.committed = 0
        self.committed_at = -1     # zero-fill "since forever" (fresh DRAM)
        self.history: list = []    # [(committed_at, value)] older commits
        self.evicted = False
        self.pending: dict = {}    # op_id -> value (in-flight writes)
        self.ghosts: set = set()   # failed writes that may have applied
        self.atomic_ok: set = set()  # bytes touched by concurrent atomics
        self.tainted = False       # value unknowable until next commit


class ShadowOracle:
    """Passive mirror + checker for remote-memory data correctness."""

    HISTORY_DEPTH = 16
    GHOST_CAP = 8
    ATOMIC_OK_CAP = 32
    RECORD_CAP = 200

    def __init__(self, env):
        self.env = env
        self._spaces: dict = {}    # (mn, pid) -> {addr: _Cell}
        self._next_op = 0
        self.mismatches: list[ReadMismatch] = []
        self.total_mismatches = 0
        self.epoch_violations: list[EpochViolation] = []
        self.crash_log: dict = {}  # mn -> [[crash_ns, restart_ns|None]]
        self.writes_tracked = 0
        self.reads_checked = 0
        self.atomics_tracked = 0
        self.bytes_checked = 0
        self.unchecked_bytes = 0   # tainted / history-evicted skips

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.epoch_violations

    # -- internals -------------------------------------------------------------

    def _space(self, mn: str, pid: int) -> dict:
        key = (mn, pid)
        space = self._spaces.get(key)
        if space is None:
            space = self._spaces[key] = {}
        return space

    def _token(self, kind: str, mn: str, pid: int, va: int, **extra) -> OpToken:
        self._next_op += 1
        return OpToken(op_id=self._next_op, kind=kind, mn=mn, pid=pid,
                       va=va, started_ns=self.env.now, **extra)

    def _commit_byte(self, cell: _Cell, value: int, now: int) -> None:
        cell.history.append((cell.committed_at, cell.committed))
        if len(cell.history) > self.HISTORY_DEPTH:
            cell.history.pop(0)
            cell.evicted = True
        cell.committed = value
        cell.committed_at = now

    def _check_epoch(self, token: OpToken, retries: int) -> None:
        if retries:
            return
        windows = self.crash_log.get(token.mn)
        if not windows:
            return
        now = self.env.now
        for crash_ns, restart_ns in windows:
            if restart_ns is None:
                continue
            if token.started_ns < crash_ns and now > restart_ns:
                self.epoch_violations.append(EpochViolation(
                    at_ns=now, mn=token.mn, pid=token.pid, va=token.va,
                    kind=token.kind, started_ns=token.started_ns,
                    crash_ns=crash_ns, restart_ns=restart_ns))
                return

    # -- write tracking ---------------------------------------------------------

    def write_begin(self, mn: str, pid: int, va: int, data: bytes) -> OpToken:
        token = self._token("write", mn, pid, va, data=bytes(data))
        space = self._space(mn, pid)
        for offset, value in enumerate(token.data):
            cell = space.get(va + offset)
            if cell is None:
                cell = space[va + offset] = _Cell()
            cell.pending[token.op_id] = value
        self.writes_tracked += 1
        return token

    def write_acked(self, token: OpToken, retries: int = 0) -> None:
        """The write was acknowledged: it is now the committed value."""
        now = self.env.now
        self._check_epoch(token, retries)
        space = self._space(token.mn, token.pid)
        for offset, value in enumerate(token.data):
            cell = space.get(token.va + offset)
            if cell is None:
                cell = space[token.va + offset] = _Cell()
            cell.pending.pop(token.op_id, None)
            self._commit_byte(cell, value, now)
            cell.ghosts.clear()
            cell.atomic_ok.clear()
            cell.tainted = False

    def write_failed(self, token: OpToken) -> None:
        """All retries exhausted — the write *may* still have applied."""
        space = self._space(token.mn, token.pid)
        for offset, value in enumerate(token.data):
            cell = space.get(token.va + offset)
            if cell is None:
                continue
            cell.pending.pop(token.op_id, None)
            if len(cell.ghosts) >= self.GHOST_CAP:
                cell.tainted = True
            else:
                cell.ghosts.add(value)

    # -- read checking ----------------------------------------------------------

    def read_begin(self, mn: str, pid: int, va: int, size: int) -> OpToken:
        return self._token("read", mn, pid, va, size=size)

    def read_failed(self, token: OpToken) -> None:
        """Reads have no effect; a failed one needs no bookkeeping."""

    def read_checked(self, token: OpToken, data: bytes,
                     retries: int = 0) -> None:
        """Check a completed read's payload against the mirror."""
        now = self.env.now
        self._check_epoch(token, retries)
        self.reads_checked += 1
        space = self._spaces.get((token.mn, token.pid))
        start = token.started_ns
        for offset, observed in enumerate(data):
            self.bytes_checked += 1
            addr = token.va + offset
            cell = space.get(addr) if space else None
            if cell is None:
                # Untouched allocated memory reads as zero (DRAM is
                # sparse/zero-filled and freed pages are scrubbed).
                if observed != 0:
                    self._mismatch(token, addr, observed, (0,), now)
                continue
            if cell.tainted:
                self.unchecked_bytes += 1
                continue
            acceptable = {cell.committed}
            acceptable.update(cell.pending.values())
            acceptable.update(cell.ghosts)
            acceptable.update(cell.atomic_ok)
            undetermined = False
            if cell.committed_at > start:
                # Commits landed inside the window: those and the last
                # pre-window value are all legal serving points.
                found_pre = False
                for committed_at, value in reversed(cell.history):
                    acceptable.add(value)
                    if committed_at <= start:
                        found_pre = True
                        break
                if not found_pre and cell.evicted:
                    undetermined = True
            if observed in acceptable:
                continue
            if undetermined:
                self.unchecked_bytes += 1
                continue
            self._mismatch(token, addr, observed, tuple(sorted(acceptable)),
                           now)

    def _mismatch(self, token: OpToken, addr: int, observed: int,
                  acceptable: tuple, now: int, note: str = "") -> None:
        self.total_mismatches += 1
        if len(self.mismatches) < self.RECORD_CAP:
            self.mismatches.append(ReadMismatch(
                at_ns=now, mn=token.mn, pid=token.pid, va=addr,
                observed=observed, acceptable=acceptable,
                started_ns=token.started_ns, note=note))

    # -- atomics ----------------------------------------------------------------

    def atomic_begin(self, mn: str, pid: int, va: int,
                     op: AtomicOp) -> OpToken:
        return self._token("atomic", mn, pid, va, op=op, size=ATOMIC_WIDTH)

    def atomic_acked(self, token: OpToken, result, retries: int = 0) -> None:
        """An acknowledged atomic pins both the old and new word values."""
        now = self.env.now
        self._check_epoch(token, retries)
        self.atomics_tracked += 1
        new, _success = AtomicUnit._apply(result.old_value, token.op)
        after = result.old_value if new is None else new
        old_bytes = result.old_value.to_bytes(ATOMIC_WIDTH, "little")
        new_bytes = after.to_bytes(ATOMIC_WIDTH, "little")
        space = self._space(token.mn, token.pid)
        for offset in range(ATOMIC_WIDTH):
            addr = token.va + offset
            cell = space.get(addr)
            if cell is None:
                cell = space[addr] = _Cell()
            self._commit_byte(cell, new_bytes[offset], now)
            cell.tainted = False
            # Concurrent readers may catch any interleaving of in-flight
            # atomics; old/new stay acceptable until a plain write commits.
            if len(cell.atomic_ok) >= self.ATOMIC_OK_CAP:
                cell.tainted = True
                cell.atomic_ok.clear()
            else:
                cell.atomic_ok.add(old_bytes[offset])
                cell.atomic_ok.add(new_bytes[offset])

    def atomic_failed(self, token: OpToken) -> None:
        """A failed atomic may or may not have applied; for ``faa`` the
        resulting word is unknowable, so the word is tainted until the
        next acknowledged commit pins it again."""
        space = self._space(token.mn, token.pid)
        for offset in range(ATOMIC_WIDTH):
            cell = space.get(token.va + offset)
            if cell is None:
                cell = space[token.va + offset] = _Cell()
            cell.tainted = True

    # -- address-space lifecycle ------------------------------------------------

    def region_cleared(self, mn: str, pid: int, va: int, size: int) -> None:
        """A fresh allocation or a free: the range reads as zero again
        (new pages are untouched; freed pages are scrubbed)."""
        space = self._spaces.get((mn, pid))
        if not space:
            return
        end = va + size
        for addr in [a for a in space if va <= a < end]:
            del space[addr]

    def region_remapped(self, pid: int, old_mn: str, old_va: int,
                        new_mn: str, new_va: int, size: int) -> None:
        """A region migrated between boards: move the mirror with it."""
        source = self._spaces.get((old_mn, pid))
        if not source:
            return
        target = self._space(new_mn, pid)
        end = old_va + size
        for addr in [a for a in source if old_va <= a < end]:
            target[addr - old_va + new_va] = source.pop(addr)

    # -- failure model ----------------------------------------------------------

    def on_board_crash(self, mn: str) -> None:
        self.crash_log.setdefault(mn, []).append([self.env.now, None])

    def on_board_restart(self, mn: str) -> None:
        windows = self.crash_log.get(mn)
        if windows and windows[-1][1] is None:
            windows[-1][1] = self.env.now

    # -- reporting --------------------------------------------------------------

    def report(self) -> dict:
        return {
            "writes_tracked": self.writes_tracked,
            "reads_checked": self.reads_checked,
            "atomics_tracked": self.atomics_tracked,
            "bytes_checked": self.bytes_checked,
            "unchecked_bytes": self.unchecked_bytes,
            "read_mismatches": self.total_mismatches,
            "epoch_violations": len(self.epoch_violations),
            "mismatch_details": [m.describe() for m in self.mismatches[:20]],
            "epoch_details": [v.describe()
                              for v in self.epoch_violations[:20]],
        }

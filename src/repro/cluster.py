"""One-call cluster assembly: CNs + ToR switch + CBoard(s).

This is the entry point most examples and benchmarks use::

    cluster = ClioCluster(num_cns=2)
    thread = cluster.cn(0).process("mn0").thread()
    ...
    cluster.run()
"""

from __future__ import annotations

from typing import Optional

from repro.clib.client import ComputeNode
from repro.core.cboard import CBoard
from repro.net.switch import Topology
from repro.params import ClioParams
from repro.sim import Environment
from repro.sim.rng import RandomStream


class ClioCluster:
    """A star cluster: ``num_cns`` compute nodes and ``num_mns`` CBoards."""

    def __init__(self, params: Optional[ClioParams] = None, seed: int = 0,
                 num_cns: int = 1, num_mns: int = 1,
                 mn_capacity: Optional[int] = None,
                 page_size: Optional[int] = None):
        if num_cns < 1 or num_mns < 1:
            raise ValueError("need at least one CN and one MN")
        self.params = params or ClioParams.prototype()
        self.env = Environment()
        self.rng = RandomStream(seed, "cluster")
        self.topology = Topology(self.env, self.params.network,
                                 rng=self.rng.fork("net"))
        self.mns: list[CBoard] = []
        for index in range(num_mns):
            board = CBoard(self.env, self.params, name=f"mn{index}",
                           dram_capacity=mn_capacity, page_size=page_size)
            board.attach(self.topology)
            self.mns.append(board)
        self.cns: list[ComputeNode] = [
            ComputeNode(self.env, f"cn{index}", self.topology, self.params,
                        default_page_size=page_size)
            for index in range(num_cns)
        ]
        # Heartbeat health tracking is opt-in: its periodic sweep adds
        # events, so no-fault runs stay bit-identical unless asked for.
        self.health = None

    def start_health_monitor(self, interval_ns: int = 100_000,
                             miss_threshold: int = 3):
        """Opt into heartbeat-based board health tracking.

        Returns the :class:`~repro.faults.health.HealthMonitor`; pass it
        to a :class:`~repro.distributed.controller.GlobalController` so
        placement avoids boards believed dead.
        """
        if self.health is None:
            from repro.faults.health import HealthMonitor
            self.health = HealthMonitor(self.env, self.mns,
                                        interval_ns=interval_ns,
                                        miss_threshold=miss_threshold)
            self.health.start()
        return self.health

    def board(self, name: str) -> CBoard:
        """Memory node by name (fault schedules address boards by name)."""
        for board in self.mns:
            if board.name == name:
                return board
        raise KeyError(f"unknown board {name!r}")

    @property
    def mn(self) -> CBoard:
        """The first (often only) memory node."""
        return self.mns[0]

    def cn(self, index: int = 0) -> ComputeNode:
        return self.cns[index]

    def run(self, until=None):
        """Drive the simulation (see :meth:`repro.sim.Environment.run`).

        ``until`` is required: the CBoard's background processes (async
        buffer refill) run forever, so an open-ended run would never
        return.  Pass an event/process to wait for, or a deadline in ns.
        """
        if until is None:
            raise ValueError(
                "ClioCluster.run() needs `until` (an event or a time): "
                "background MN processes never drain the event queue")
        return self.env.run(until=until)

    def run_all(self, processes):
        """Run until every given simulation process completes."""
        gather = self.env.all_of(list(processes))
        return self.env.run(until=gather)

    def report(self) -> dict:
        """Cluster-wide health snapshot: per-board and per-CN counters."""
        return {
            "now_ns": self.env.now,
            "boards": {board.name: board.stats() for board in self.mns},
            "cns": {
                node.name: {
                    "requests_issued": node.transport.requests_issued,
                    "requests_completed": node.transport.requests_completed,
                    "requests_failed": node.transport.requests_failed,
                    "total_retries": node.transport.total_retries,
                    "stale_responses": node.transport.stale_responses,
                    "cwnd": {
                        mn: controller.cwnd
                        for mn, controller in
                        node.transport._congestion.items()
                    },
                }
                for node in self.cns
            },
            "health": self.health.stats() if self.health else None,
        }

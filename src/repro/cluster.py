"""One-call cluster assembly: CNs + ToR switch + CBoard(s).

This is the entry point most examples and benchmarks use::

    cluster = ClioCluster(num_cns=2)
    thread = cluster.cn(0).process("mn0").thread()
    ...
    cluster.run()
"""

from __future__ import annotations

from typing import Optional

from repro.clib.client import ComputeNode
from repro.core.cboard import CBoard
from repro.net.switch import Topology
from repro.params import ClioParams
from repro.sim import Environment, PartitionedEnvironment
from repro.sim.rng import RandomStream
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import Tracer


class ClioCluster:
    """A star cluster: ``num_cns`` compute nodes and ``num_mns`` CBoards.

    With ``partitioned=True`` the cluster is built on the partitioned
    engine: every CBoard and CN owns its own event wheel (logical
    process), the switch tier owns another, and link propagation delays
    become the conservative lookahead edges between them.  The
    single-process partitioned scheduler is bit-identical to the flat
    engine on the same seed — same timestamps, same tie-breaks, same RNG
    draw order — so fingerprints and goldens carry over unchanged.
    """

    def __init__(self, params: Optional[ClioParams] = None, seed: int = 0,
                 num_cns: int = 1, num_mns: int = 1,
                 mn_capacity: Optional[int] = None,
                 page_size: Optional[int] = None,
                 partitioned: bool = False,
                 rack=None,
                 alloc=None):
        if num_cns < 1 or num_mns < 1:
            raise ValueError("need at least one CN and one MN")
        self.params = params or ClioParams.prototype()
        if alloc is not None:
            # Strategy shorthand: a PA-strategy name or a full AllocParams.
            from dataclasses import replace as _replace

            from repro.params import AllocParams
            if isinstance(alloc, str):
                alloc = AllocParams(pa_strategy=alloc)
            self.params = _replace(self.params, alloc=alloc)
        self.partitioned = partitioned
        rack_config = None
        if rack is not None:
            from repro.rack import RackConfig
            rack_config = (RackConfig(boards=rack) if isinstance(rack, int)
                           else rack)
            # The rack config owns the board count: in-service boards
            # plus the pre-cabled spares membership can add later.
            num_mns = rack_config.boards + rack_config.spares
        self.rack_config = rack_config
        if partitioned:
            self.env: Environment = PartitionedEnvironment()
            if rack_config is not None:
                tor_envs = [self.env.partition(f"tor{i}")
                            for i in range(rack_config.tors)]
                spine_env = self.env.partition("spine")
                switch_env = tor_envs[0]
            else:
                switch_env = self.env.partition("switch")
        else:
            self.env = Environment()
            switch_env = self.env
            if rack_config is not None:
                tor_envs = [self.env] * rack_config.tors
                spine_env = self.env
        self.rng = RandomStream(seed, "cluster")
        # One shared metrics namespace for the whole cluster; components
        # register themselves under their own prefixes at construction.
        self.metrics = MetricsRegistry()
        if rack_config is not None:
            from repro.net.rack import RackTopology
            self.topology = RackTopology(
                self.env, self.params.network, tors=rack_config.tors,
                rng=self.rng.fork("net"), registry=self.metrics,
                tor_envs=tor_envs, spine_env=spine_env,
                spine_rate_bps=rack_config.spine_rate_bps,
                spine_forward_ns=rack_config.spine_forward_ns)
        else:
            self.topology = Topology(switch_env, self.params.network,
                                     rng=self.rng.fork("net"),
                                     registry=self.metrics)
        self.mns: list[CBoard] = []
        for index in range(num_mns):
            board_env = (self.env.partition(f"mn{index}") if partitioned
                         else self.env)
            board = CBoard(board_env, self.params, name=f"mn{index}",
                           dram_capacity=mn_capacity, page_size=page_size,
                           registry=self.metrics)
            board.attach(self.topology)
            self.mns.append(board)
        self.cns: list[ComputeNode] = [
            ComputeNode(self.env.partition(f"cn{index}") if partitioned
                        else self.env,
                        f"cn{index}", self.topology, self.params,
                        default_page_size=page_size, registry=self.metrics)
            for index in range(num_cns)
        ]
        if partitioned:
            self._register_partition_metrics()
        # The rack tier (ring + controller + membership) hangs off the
        # boards just built; spares stay out of service until added.
        self.rack = None
        if rack_config is not None:
            from repro.rack import RackTier
            self.rack = RackTier(self, rack_config)
        # Heartbeat health tracking is opt-in: its periodic sweep adds
        # events, so no-fault runs stay bit-identical unless asked for.
        self.health = None
        # Span tracing is likewise opt-in (recording is passive — no
        # events, no RNG — but the record buffer costs memory).
        self.tracer = None
        # Runtime correctness checking is opt-in the same way.
        self.verifier = None
        # Hot-page caching (repro.cache) is opt-in the same way: off, the
        # directory node doesn't exist and no op is intercepted.
        self.cache_dir = None
        # Multi-tenant egress shaping (repro.net.qos) is opt-in the same
        # way: off, the switch consults no shaper and schedules nothing.
        self.qos_shapers: dict[str, object] = {}
        self._switch_env = switch_env

    def _register_partition_metrics(self) -> None:
        """Expose per-partition engine counters as fn-backed metrics."""
        scope = self.metrics.scope("engine")
        scope.counter("drain_runs", fn=lambda: self.env.drain_runs)
        scope.counter("events_dispatched",
                      fn=lambda: self.env.events_dispatched)
        for part in self.env.partitions:
            prefix = f"partition.{part.name}"
            scope.counter(f"{prefix}.events",
                          fn=lambda p=part: p.events_dispatched)
            scope.counter(f"{prefix}.cross_in",
                          fn=lambda p=part: p.cross_events_in)

    def partition_report(self) -> Optional[dict]:
        """Engine-level partition stats, or ``None`` on a flat cluster."""
        if not self.partitioned:
            return None
        return self.env.partition_stats()

    # -- health monitoring ----------------------------------------------------------
    #
    # Every opt-in subsystem follows the same surface: ``enable_*()``
    # returns the subsystem handle (idempotent), ``disable_*()`` detaches
    # it while keeping whatever it recorded.

    def enable_health_monitor(self, interval_ns: int = 100_000,
                              miss_threshold: int = 3):
        """Opt into heartbeat-based board health tracking.

        Returns the :class:`~repro.faults.health.HealthMonitor`; pass it
        to a :class:`~repro.distributed.controller.GlobalController` so
        placement avoids boards believed dead.  Idempotent: a second
        call returns the existing monitor.
        """
        if self.health is None:
            from repro.faults.health import HealthMonitor
            self.health = HealthMonitor(self.env, self.mns,
                                        interval_ns=interval_ns,
                                        miss_threshold=miss_threshold,
                                        registry=self.metrics)
            self.health.tracer = self.tracer
        self.health.start()
        return self.health

    def disable_health_monitor(self) -> None:
        """Stop the heartbeat sweep (beliefs and transitions are kept)."""
        if self.health is not None:
            self.health.stop()

    def start_health_monitor(self, interval_ns: int = 100_000,
                             miss_threshold: int = 3):
        """Deprecated alias for :meth:`enable_health_monitor`."""
        return self.enable_health_monitor(interval_ns=interval_ns,
                                          miss_threshold=miss_threshold)

    # -- tracing ------------------------------------------------------------------

    def enable_tracing(self, max_records: int = 1_000_000) -> Tracer:
        """Attach a :class:`~repro.telemetry.spans.Tracer` everywhere.

        Recording never schedules events and never draws RNG, so a traced
        run produces bit-identical simulated timestamps to an untraced
        one (``tests/telemetry/test_zero_cost.py`` proves it).  Idempotent:
        a second call returns the existing tracer.
        """
        if self.tracer is None:
            self._set_tracer(Tracer(self.env, max_records=max_records))
        return self.tracer

    def disable_tracing(self) -> None:
        """Detach the tracer from every component (records are kept)."""
        self._set_tracer(None)

    def _set_tracer(self, tracer) -> None:
        self.tracer = tracer
        for board in self.mns:
            board.set_tracer(tracer)
        for node in self.cns:
            node.transport.tracer = tracer
            if node.cache is not None:
                node.cache.tracer = tracer
        self.topology.set_tracer(tracer)
        if self.health is not None:
            self.health.tracer = tracer
        if self.cache_dir is not None:
            self.cache_dir.tracer = tracer

    # -- verification -------------------------------------------------------------

    def enable_verification(self, quick_checks: bool = True):
        """Attach a :class:`~repro.verify.ClusterVerifier` everywhere.

        Like tracing, checking is passive — hooks record and inspect
        state synchronously inside existing callbacks, scheduling no
        events and drawing no RNG — so a verified run keeps bit-identical
        simulated timestamps (``tests/verify/test_chaos_oracle.py`` pins
        it).  Idempotent: a second call returns the existing verifier.
        """
        if self.verifier is None:
            from repro.verify import ClusterVerifier
            self.verifier = ClusterVerifier(self, quick_checks=quick_checks)
            self.verifier.attach()
        return self.verifier

    def disable_verification(self) -> None:
        """Detach the verifier from every component (records are kept)."""
        if self.verifier is not None:
            self.verifier.detach()
            self.verifier = None

    # -- hot-page caching (repro.cache) -------------------------------------------

    def enable_caching(self, policy: Optional[str] = None,
                       line_bytes: Optional[int] = None,
                       capacity_lines: Optional[int] = None,
                       eviction: Optional[str] = None):
        """Opt the cluster into CN-side coherent hot-page caching.

        Builds the cache directory (a ``cachedir`` node on the switch
        tier) and one :class:`~repro.cache.PageCache` per CN, then routes
        every CLib data op through the cache.  Keyword overrides default
        to :class:`~repro.params.CacheParams` in ``self.params``.
        Idempotent: a second call returns the existing directory.
        """
        if self.cache_dir is not None:
            for node in self.cns:
                if node.cache is not None:
                    node.cache.enabled = True
            return self.cache_dir
        from dataclasses import replace

        from repro.cache import CacheDirectory, PageCache
        overrides = {name: value for name, value in (
            ("policy", policy), ("line_bytes", line_bytes),
            ("capacity_lines", capacity_lines), ("eviction", eviction))
            if value is not None}
        cacheparams = replace(self.params.cache, **overrides)
        for board in self.mns:
            if board.page_spec.page_size % cacheparams.line_bytes:
                raise ValueError(
                    f"cache line_bytes ({cacheparams.line_bytes}) must "
                    f"divide {board.name}'s page size "
                    f"({board.page_spec.page_size})")
        self.cache_dir = CacheDirectory(self._switch_env, self.topology,
                                        self.params, cacheparams=cacheparams,
                                        registry=self.metrics)
        self.cache_dir.tracer = self.tracer
        for node in self.cns:
            node.cache = PageCache(node, cacheparams, registry=self.metrics)
            node.cache.tracer = self.tracer
        return self.cache_dir

    def disable_caching(self, drain: bool = True) -> list:
        """Turn op interception off on every CN.

        With ``drain=True`` (default) each cache also flushes its dirty
        lines and departs the directory in the background; the returned
        simulation processes complete when that settles (``run`` past
        them before trusting uncached reads under the write-back policy).
        Caches keep answering coherence messages either way.
        """
        processes = []
        for node in self.cns:
            if node.cache is None:
                continue
            node.cache.enabled = False
            if drain:
                processes.append(self.env.process(node.cache.shutdown()))
        return processes

    # -- multi-tenant QoS (repro.net.qos) ------------------------------------------

    def enable_qos(self, qos=None):
        """Opt into per-tenant egress shaping at the switch.

        ``qos`` overrides ``self.params.qos``: pass a
        :class:`~repro.params.QoSParams`, or a tuple of
        :class:`~repro.params.TenantConfig` as shorthand.  Installs one
        :class:`~repro.net.qos.EgressShaper` in front of every shaped
        egress port (by default each MN downlink — the port incast
        congests); packets from nodes in no tenant bypass shaping.
        Returns the ``{node: shaper}`` mapping.  Idempotent: a second
        call reinstalls the existing shapers.
        """
        from dataclasses import replace as _replace

        from repro.net.qos import EgressShaper
        from repro.params import QoSParams
        if qos is not None:
            if isinstance(qos, tuple):
                qos = QoSParams(tenants=qos)
            self.params = _replace(self.params, qos=qos)
        switches = (self.topology.tor_switches
                    if hasattr(self.topology, "tor_switches")
                    else [self.topology.switch])
        if self.qos_shapers:
            for node, shaper in self.qos_shapers.items():
                for switch in switches:
                    if node in switch._downlinks:
                        switch.install_shaper(node, shaper)
            return self.qos_shapers
        config = self.params.qos
        if not config.tenants:
            raise ValueError(
                "enable_qos needs at least one TenantConfig "
                "(ClioParams.qos.tenants or the qos= argument)")
        if config.shape_mn_egress:
            for board in self.mns:
                for switch in switches:
                    downlink = switch._downlinks.get(board.name)
                    if downlink is None:
                        continue
                    shaper = EgressShaper(
                        switch.env, board.name, downlink, config,
                        port_rate_bps=downlink.rate_bps,
                        registry=self.metrics)
                    switch.install_shaper(board.name, shaper)
                    self.qos_shapers[board.name] = shaper
        return self.qos_shapers

    def disable_qos(self) -> None:
        """Stop shaping (stats kept; held packets still drain)."""
        switches = (self.topology.tor_switches
                    if hasattr(self.topology, "tor_switches")
                    else [self.topology.switch])
        for node in self.qos_shapers:
            for switch in switches:
                switch.remove_shaper(node)

    def board(self, name: str) -> CBoard:
        """Memory node by name (fault schedules address boards by name)."""
        for board in self.mns:
            if board.name == name:
                return board
        raise KeyError(f"unknown board {name!r}")

    @property
    def mn(self) -> CBoard:
        """The first (often only) memory node."""
        return self.mns[0]

    def cn(self, index: int = 0) -> ComputeNode:
        return self.cns[index]

    def run(self, until=None):
        """Drive the simulation (see :meth:`repro.sim.Environment.run`).

        ``until`` is required: the CBoard's background processes (async
        buffer refill) run forever, so an open-ended run would never
        return.  Pass an event/process to wait for, or a deadline in ns.
        """
        if until is None:
            raise ValueError(
                "ClioCluster.run() needs `until` (an event or a time): "
                "background MN processes never drain the event queue")
        return self.env.run(until=until)

    def run_all(self, processes):
        """Run until every given simulation process completes."""
        gather = self.env.all_of(list(processes))
        return self.env.run(until=gather)

    def report(self) -> dict:
        """Cluster-wide health snapshot: per-board and per-CN counters."""
        return {
            "now_ns": self.env.now,
            "boards": {board.name: board.stats() for board in self.mns},
            "cns": {
                node.name: {
                    **node.transport.stats(),
                    "cwnd": {
                        mn: controller.cwnd
                        for mn, controller in
                        node.transport._congestion.items()
                    },
                }
                for node in self.cns
            },
            "health": self.health.stats() if self.health else None,
        }

"""Connectionless request-response transport in CLib (paper section 4.4).

There are no connections: CLib stamps every request with a unique ID and
matches the MN's response (which carries the same ID) as the ACK.  A
request is retried — with a *fresh* ID plus the original's ID in
``retry_of`` — when a NACK arrives, the response is corrupted, or nothing
arrives within TIMEOUT.  Reliability and ordering live entirely at this
layer; packets may reorder freely underneath.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.net.packet import (
    BatchSubOp,
    ClioHeader,
    Packet,
    PacketType,
    fragment_payload,
)
from repro.params import ClioParams
from repro.sim import Environment, Event
from repro.telemetry.metrics import MetricsRegistry, StatsView
from repro.telemetry.spans import Tracer
from repro.transport.congestion import (
    CongestionController,
    IncastController,
    make_congestion_controller,
)

#: Global request-ID source: unique across CNs and across retries.
_request_ids = itertools.count(1)


class RequestFailed(Exception):
    """Original request and every retry failed (paper: report the error).

    Attempts are hard-capped at ``CLibParams.max_retries`` + 1: once the
    per-attempt backoff saturates at ``slow_timeout_ns`` the transport
    stops retrying and surfaces this typed error instead of spinning —
    a dead board or severed link fails loudly in bounded time.
    """

    def __init__(self, mn: str, packet_type, va: int, attempts: int,
                 reason: str):
        super().__init__(
            f"request to {mn} failed after {attempts} attempts "
            f"(type={packet_type.value}, va={va:#x}, last error: {reason})")
        self.mn = mn
        self.packet_type = packet_type
        self.va = va
        self.attempts = attempts
        self.reason = reason


#: Backwards-compatible alias (pre-fault-subsystem name).
RequestFailedError = RequestFailed


@dataclass(slots=True)
class RequestOutcome:
    """A completed request: response body plus transport telemetry."""

    body: Any                 # ResponseBody from the MN
    data: Optional[bytes]     # reassembled read payload (if any)
    rtt_ns: int
    retries: int
    request_id: int


@dataclass(slots=True)
class BatchOutcome:
    """A completed multi-op frame: per-sub-op statuses + read data.

    ``statuses`` holds one entry per sub-op in issue order; ``data`` is
    the concatenation of every successful read's bytes in that same
    order (the CLib layer slices it back apart using the sub-op sizes).
    """

    statuses: tuple           # per-sub-op Status, in issue order
    data: bytes               # concatenated successful read payloads
    rtt_ns: int
    retries: int
    request_id: int


@dataclass(slots=True)
class _Pending:
    """Reassembly and completion state for one in-flight request ID."""

    done: Event
    sent_at: int
    expected_fragments: int = 1
    fragments: dict[int, Packet] = field(default_factory=dict)
    nacked: bool = False
    corrupted: bool = False
    timed_out: bool = False

    def expire(self) -> None:
        """TIMEOUT callback: wake the waiter unless a response already did."""
        if not self.done.triggered:
            self.timed_out = True
            self.done.succeed()


class Transport:
    """One CN's transport endpoint: send requests, match responses."""

    def __init__(self, env: Environment, node_name: str, topology,
                 params: ClioParams,
                 registry: Optional[MetricsRegistry] = None):
        self.env = env
        self.node_name = node_name
        self.topology = topology
        self.params = params
        clib = params.clib
        self._congestion: dict[str, CongestionController] = {}
        self._incast = IncastController(clib)
        self._pending: dict[int, _Pending] = {}
        self._send_waiters: deque[Event] = deque()
        self._last_send: dict[str, int] = {}
        self.stale_responses = 0
        self.total_retries = 0
        self.requests_issued = 0
        self.requests_completed = 0
        self.requests_failed = 0
        # Batch accounting.  A multi-op frame occupies exactly one window
        # slot and one request ID, so it counts once in requests_issued /
        # completed / failed (the conservation invariant is unchanged);
        # these counters additionally track the sub-ops it carried.
        self.batches_issued = 0
        self.batch_subops_issued = 0
        self.batch_subops_completed = 0
        # Hot-page cache hook (repro.cache): when a PageCache is attached
        # it consumes directory-initiated CACHE_INVAL messages; None (the
        # default) keeps the receive path byte-identical to cache-off runs.
        self.cache_listener = None
        topology.add_node(node_name, self.receive,
                          port_rate_bps=params.network.cn_nic_rate_bps,
                          node_env=env)
        # Telemetry: counters stay plain attributes; the registry holds
        # function-backed views under `transport.<node>.*`; span tracing
        # is off (None) unless the cluster enables it.
        self.tracer: Optional[Tracer] = None
        self.metrics = (registry if registry is not None
                        else MetricsRegistry()).scope(
                            f"transport.{node_name}")
        m = self.metrics
        self._stats = StatsView({
            "requests_issued": m.counter(
                "requests_issued", fn=lambda: self.requests_issued),
            "requests_completed": m.counter(
                "requests_completed", fn=lambda: self.requests_completed),
            "requests_failed": m.counter(
                "requests_failed", "original + all retries exhausted",
                fn=lambda: self.requests_failed),
            "total_retries": m.counter(
                "total_retries", fn=lambda: self.total_retries),
            "stale_responses": m.counter(
                "stale_responses", "responses to already-retried IDs",
                fn=lambda: self.stale_responses),
            "batches_issued": m.counter(
                "batches_issued", "multi-op frames issued",
                fn=lambda: self.batches_issued),
            "batch_subops_issued": m.counter(
                "batch_subops_issued", "sub-ops carried by issued frames",
                fn=lambda: self.batch_subops_issued),
            "batch_subops_completed": m.counter(
                "batch_subops_completed", "sub-ops whose frame was acked",
                fn=lambda: self.batch_subops_completed),
        })
        m.gauge("pending", "in-flight request IDs",
                fn=lambda: len(self._pending))
        self._batch_sizes = m.histogram(
            "batch.size", "sub-ops per issued multi-op frame")

    def stats(self) -> dict:
        """Public transport counters — a view over registry instruments."""
        return self._stats.snapshot()

    def congestion(self, mn: str) -> CongestionController:
        controller = self._congestion.get(mn)
        if controller is None:
            controller = make_congestion_controller(self.params.clib)
            self._congestion[mn] = controller
        return controller

    # -- receive side -------------------------------------------------------------

    def receive(self, packet: Packet) -> None:
        header = packet.header
        if header.packet_type is PacketType.CACHE_INVAL:
            # Directory-initiated message, not a response to anything we
            # sent.  A corrupt copy is dropped like a loss — the directory
            # retransmits until the CN acks.
            listener = self.cache_listener
            if listener is not None and not packet.corrupt:
                listener(packet)
            return
        state = self._pending.get(header.request_id)
        if state is None:
            self.stale_responses += 1   # response to an already-retried ID
            return
        if header.packet_type is PacketType.NACK:
            state.nacked = True
            if not state.done.triggered:
                state.done.succeed()
            return
        if packet.corrupt:
            state.corrupted = True
            if not state.done.triggered:
                state.done.succeed()
            return
        state.expected_fragments = header.fragments
        state.fragments[header.fragment] = packet
        if len(state.fragments) >= state.expected_fragments:
            if not state.done.triggered:
                state.done.succeed()

    # -- admission (congestion + incast) ---------------------------------------------

    def _admit(self, mn: str, expected_response_bytes: int):
        congestion = self.congestion(mn)
        while True:
            now = self.env.now
            last = self._last_send.get(mn, -(10 ** 12))
            if (congestion.can_send(now, last)
                    and self._incast.can_send(expected_response_bytes)):
                return
            if congestion.cwnd < 1.0 and congestion.outstanding == 0:
                # Paced sub-packet window: sleep until the pacing gap closes.
                wait = max(1, congestion.pacing_interval_ns() - (now - last))
                yield self.env.timeout(wait)
            else:
                gate = self.env.event()
                self._send_waiters.append(gate)
                yield gate

    def _wake_senders(self) -> None:
        while self._send_waiters:
            gate = self._send_waiters.popleft()
            if not gate.triggered:
                gate.succeed()

    # -- send side -------------------------------------------------------------------

    def _emit(self, mn: str, request_id: int, packet_type: PacketType,
              pid: int, va: int, size: int, data: Optional[bytes],
              payload: Any, retry_of: Optional[int]) -> None:
        """Fragment one request into link-layer packets and transmit."""
        header_bytes = self.params.network.header_bytes
        mtu = self.params.network.mtu
        if packet_type is PacketType.WRITE and size > 0:
            fragments = fragment_payload(size, mtu)
        else:
            fragments = [(0, 0)]
        count = len(fragments)
        for index, (offset, chunk) in enumerate(fragments):
            body = payload
            chunk_size = size if count == 1 else chunk
            if packet_type is PacketType.WRITE:
                body = data[offset:offset + chunk] if data is not None else None
                chunk_size = chunk
            header = ClioHeader(
                src=self.node_name, dst=mn, request_id=request_id,
                packet_type=packet_type, pid=pid, va=va + offset,
                size=chunk_size, total_size=size,
                fragment=index, fragments=count, retry_of=retry_of)
            self.topology.send(Packet(
                header=header, payload=body,
                wire_bytes=header_bytes + (len(body) if isinstance(body, (bytes, bytearray)) else 0),
                sent_at=self.env.now))

    def _emit_batch(self, mn: str, request_id: int, pid: int,
                    sub_ops: tuple[BatchSubOp, ...], wire_bytes: int,
                    retry_of: Optional[int]) -> None:
        """Transmit one multi-op frame as a single link-layer packet.

        ``header.size`` carries the sub-op count (the geometry field a
        real frame header would need); per-op VAs/sizes live in the
        sub-op descriptors, already priced into ``wire_bytes``.
        """
        total = sum(sub.size for sub in sub_ops)
        header = ClioHeader(
            src=self.node_name, dst=mn, request_id=request_id,
            packet_type=PacketType.BATCH, pid=pid, va=sub_ops[0].va,
            size=len(sub_ops), total_size=total, retry_of=retry_of)
        self.topology.send(Packet(header=header, payload=sub_ops,
                                  wire_bytes=wire_bytes,
                                  sent_at=self.env.now))

    #: Request types handled off the fast path: they get the long timeout.
    #: CACHE_REQ is here because a directory request can legitimately wait
    #: behind a held write transaction (recalls to other CNs in flight).
    SLOW_TYPES = frozenset({PacketType.ALLOC, PacketType.FREE,
                            PacketType.OFFLOAD, PacketType.FENCE,
                            PacketType.CACHE_REQ})

    def request(self, mn: str, packet_type: PacketType, pid: int = 0,
                va: int = 0, size: int = 0, data: Optional[bytes] = None,
                payload: Any = None,
                expected_response_bytes: Optional[int] = None,
                timeout_ns: Optional[int] = None):
        """Process-generator: issue one request, retrying per section 4.5.

        Returns a :class:`RequestOutcome`; raises
        :class:`RequestFailed` after the original + ``max_retries``
        attempts all fail.
        """
        clib = self.params.clib
        self.requests_issued += 1
        if expected_response_bytes is None:
            expected_response_bytes = self.params.network.header_bytes + (
                size if packet_type is PacketType.READ else 0)
        if timeout_ns is None:
            if packet_type in self.SLOW_TYPES:
                timeout_ns = clib.slow_timeout_ns
            else:
                # Large requests legitimately spend longer on the wire
                # (the MN port is the bottleneck); scale the TIMEOUT with
                # the expected wire occupancy so bulk transfers under load
                # don't spuriously retry.
                wire_ns = ((size + expected_response_bytes) * 8 * 1_000_000_000
                           // self.params.network.mn_port_rate_bps)
                timeout_ns = clib.timeout_ns + 4 * wire_ns

        def emit(request_id: int, retry_of: Optional[int]) -> None:
            self._emit(mn, request_id, packet_type, pid, va, size, data,
                       payload, retry_of)

        outcome = yield from self._transact(
            mn, packet_type, emit, expected_response_bytes, timeout_ns,
            va=va, trace_args={"mn": mn, "pid": pid, "va": va, "size": size})
        return outcome

    def request_batch(self, mn: str, pid: int, sub_ops,
                      timeout_ns: Optional[int] = None):
        """Process-generator: issue one multi-op frame (repro.batch).

        The frame is a single fast-path request on the wire: one request
        ID, one congestion-window slot, one retransmission unit (whole
        frame retried with a fresh ID; write-bearing frames dedup at the
        MN).  Returns a :class:`BatchOutcome` with per-sub-op statuses;
        raises :class:`RequestFailed` like :meth:`request`.
        """
        sub_ops = tuple(sub_ops)
        if not sub_ops:
            raise ValueError("request_batch needs at least one sub-op")
        clib = self.params.clib
        net = self.params.network
        request_bytes = net.header_bytes + sum(
            net.subop_header_bytes
            + (sub.size if sub.op is PacketType.WRITE else 0)
            for sub in sub_ops)
        if request_bytes > net.header_bytes + net.mtu:
            raise ValueError(
                f"batch frame exceeds the MTU ({request_bytes - net.header_bytes}"
                f" > {net.mtu} payload bytes); split it or shrink ops")
        self.requests_issued += 1
        self.batches_issued += 1
        self.batch_subops_issued += len(sub_ops)
        self._batch_sizes.observe(len(sub_ops))
        read_bytes = sum(sub.size for sub in sub_ops
                         if sub.op is PacketType.READ)
        expected_response_bytes = net.header_bytes + read_bytes
        if timeout_ns is None:
            wire_ns = ((request_bytes + expected_response_bytes) * 8
                       * 1_000_000_000 // net.mn_port_rate_bps)
            # A frame's service time grows with its sub-op count (each
            # sub-op holds the board pipeline, reads the serialized DMA
            # engine), and admitted frames queue behind each other per
            # window slot — so the retransmission budget must scale with
            # frame size or deep batches spuriously time out and retry.
            timeout_ns = (clib.timeout_ns
                          + clib.timeout_ns * (len(sub_ops) - 1) // 4
                          + 8 * wire_ns)

        def emit(request_id: int, retry_of: Optional[int]) -> None:
            self._emit_batch(mn, request_id, pid, sub_ops, request_bytes,
                             retry_of)

        outcome = yield from self._transact(
            mn, PacketType.BATCH, emit, expected_response_bytes, timeout_ns,
            va=sub_ops[0].va,
            trace_args={"mn": mn, "pid": pid, "batch_size": len(sub_ops)},
            rtt_scale=len(sub_ops))
        self.batch_subops_completed += len(sub_ops)
        return BatchOutcome(statuses=tuple(outcome.body.value),
                            data=outcome.data or b"",
                            rtt_ns=outcome.rtt_ns, retries=outcome.retries,
                            request_id=outcome.request_id)

    def _transact(self, mn: str, packet_type: PacketType, emit,
                  expected_response_bytes: int, timeout_ns: int,
                  va: int, trace_args: dict, rtt_scale: int = 1):
        """Shared retry state machine behind request()/request_batch().

        ``rtt_scale`` normalizes the RTT sample fed to congestion
        control: a frame of N sub-ops legitimately takes ~N times one
        op's service time, so its ack reports the *per-sub-op* pace —
        otherwise every deep batch reads as queueing delay and the
        window collapses to its floor.
        """
        clib = self.params.clib
        congestion = self.congestion(mn)
        original_id: Optional[int] = None
        retries = 0
        tracer = self.tracer
        request_span = None
        if tracer is not None:
            request_span = tracer.begin(
                f"request:{packet_type.value}", "transport", self.node_name,
                args=trace_args)

        for attempt in range(clib.max_retries + 1):
            # Uncontended fast path: skip the admission generator entirely.
            if not (congestion.can_send(self.env.now,
                                        self._last_send.get(mn, -(10 ** 12)))
                    and self._incast.can_send(expected_response_bytes)):
                yield from self._admit(mn, expected_response_bytes)
            request_id = next(_request_ids)
            if original_id is None:
                original_id = request_id
            retry_of = original_id if attempt > 0 else None
            state = _Pending(done=self.env.event(), sent_at=self.env.now)
            self._pending[request_id] = state

            # Claim the window slot *synchronously* with admission — any
            # later claim would let concurrent senders overrun the window.
            congestion.on_send()
            self._incast.on_send(expected_response_bytes)
            self._last_send[mn] = self.env.now

            # CLib processing cost, then kernel-bypass raw Ethernet send.
            yield self.env.timeout(clib.request_overhead_ns // 2)
            emit(request_id, retry_of)
            attempt_span = None
            if tracer is not None:
                attempt_span = tracer.begin(
                    f"attempt:{packet_type.value}", "transport",
                    self.node_name,
                    args={"request_id": request_id, "mn": mn,
                          "retry_of": retry_of})

            # Exponential backoff: each retry doubles the TIMEOUT, so a
            # transient incast queue drains instead of being re-fed.  The
            # TIMEOUT is a scheduled callback that triggers ``state.done``
            # itself — no per-attempt Timeout event or AnyOf condition.
            attempt_timeout = min(timeout_ns << attempt, clib.slow_timeout_ns)
            self.env.schedule_callback(attempt_timeout, state.expire)
            yield state.done

            self._incast.on_complete(expected_response_bytes)
            if not state.timed_out and not state.nacked and not state.corrupted:
                rtt = self.env.now - state.sent_at
                congestion.on_ack(rtt // rtt_scale if rtt_scale > 1 else rtt)
                self._wake_senders()
                del self._pending[request_id]
                if tracer is not None:
                    tracer.end(attempt_span, outcome="ok")
                yield self.env.timeout(clib.request_overhead_ns
                                       - clib.request_overhead_ns // 2)
                body, response_data = self._assemble(state)
                self.requests_completed += 1
                self.total_retries += retries
                if tracer is not None:
                    tracer.end(request_span, outcome="ok", retries=retries,
                               request_id=request_id, rtt_ns=rtt)
                return RequestOutcome(body=body, data=response_data,
                                      rtt_ns=rtt, retries=retries,
                                      request_id=request_id)

            # NACK, corrupted response, or TIMEOUT: retry with a fresh ID.
            if state.nacked:
                last_reason = "nack"
            elif state.corrupted:
                last_reason = "corrupted response"
            else:
                last_reason = "timeout"
            if tracer is not None:
                tracer.end(attempt_span, outcome=last_reason)
            if not state.timed_out:
                late_rtt = self.env.now - state.sent_at
                congestion.on_ack(late_rtt // rtt_scale
                                  if rtt_scale > 1 else late_rtt)
            else:
                congestion.on_timeout()
            self._wake_senders()
            del self._pending[request_id]
            if attempt < clib.max_retries:
                retries += 1   # another attempt will actually be sent

        self.total_retries += retries
        self.requests_failed += 1
        if tracer is not None:
            tracer.end(request_span, outcome="failed", retries=retries,
                       reason=last_reason)
        raise RequestFailed(mn, packet_type, va, attempts=retries + 1,
                            reason=last_reason)

    @staticmethod
    def _assemble(state: _Pending) -> tuple[Any, Optional[bytes]]:
        """Reassemble response fragments into (body, read payload)."""
        first = state.fragments.get(0)
        body = first.payload if first is not None else None
        if state.expected_fragments == 1:
            data = body.data if body is not None else None
            return body, data
        parts = []
        for index in range(state.expected_fragments):
            fragment_body = state.fragments[index].payload
            if fragment_body.data is not None:
                parts.append(fragment_body.data)
        return body, b"".join(parts)

"""Delay-based congestion and incast control (paper section 4.4).

One congestion window per (CN, MN) pair limits outstanding *requests*;
the default algorithm grows it additively while measured RTT stays under
target and shrinks multiplicatively when delay inflates (Swift-style).
Like Swift, cwnd may fall below one packet — a cwnd of 0.1 means one send
per 10 target-RTTs — which is how a CN backs off when the MN's downlink
is incast-congested.

Because all transport logic lives in CN software, swapping the congestion
algorithm is a library change (the paper's R7 explicitly calls for this):
:func:`make_congestion_controller` builds the algorithm named by
``CLibParams.cc_algorithm`` — ``"swift"`` (default), ``"timely"``
(gradient-based), or ``"static"`` (fixed window, the ablation baseline).

The incast window bounds the *bytes of expected responses* outstanding,
exploiting the fact that the CN knows every response's size in advance.
"""

from __future__ import annotations

from repro.params import CLibParams


class CongestionController:
    """Swift-style AIMD on end-to-end delay (the paper's design)."""

    name = "swift"

    def __init__(self, params: CLibParams):
        self.params = params
        self.cwnd = params.cwnd_init
        self.outstanding = 0
        self.acks = 0
        self.decreases = 0

    # -- admission ----------------------------------------------------------------

    def can_send(self, now: int, last_send: int) -> bool:
        """May one more request go out right now?"""
        if self.cwnd >= 1.0:
            return self.outstanding < int(self.cwnd)
        # Sub-packet window: at most one outstanding, paced apart.
        if self.outstanding >= 1:
            return False
        return now - last_send >= self.pacing_interval_ns()

    def pacing_interval_ns(self) -> int:
        """Send spacing when cwnd < 1 (one packet per 1/cwnd RTTs)."""
        if self.cwnd >= 1.0:
            return 0
        return int(self.params.target_rtt_ns / max(self.cwnd,
                                                   self.params.cwnd_min))

    def on_send(self) -> None:
        self.outstanding += 1

    # -- feedback ----------------------------------------------------------------

    def on_ack(self, rtt_ns: int) -> None:
        """A response arrived: AIMD update from the delay signal."""
        self.outstanding = max(0, self.outstanding - 1)
        self.acks += 1
        if rtt_ns <= self.params.target_rtt_ns:
            self.cwnd = min(self.params.cwnd_max,
                            self.cwnd + self.params.cwnd_additive_increase
                            / max(self.cwnd, 1.0))
        else:
            self.cwnd = max(self.params.cwnd_min,
                            self.cwnd * self.params.cwnd_multiplicative_decrease)
            self.decreases += 1

    def on_timeout(self) -> None:
        """A request timed out: treat as severe congestion."""
        self.outstanding = max(0, self.outstanding - 1)
        self.cwnd = max(self.params.cwnd_min,
                        self.cwnd * self.params.cwnd_multiplicative_decrease ** 2)
        self.decreases += 1


class TimelyController(CongestionController):
    """TIMELY-style gradient congestion control (Mittal et al.).

    Reacts to the *slope* of the RTT signal, not just its level: rising
    delay cuts the window proportionally to the normalized gradient;
    falling or flat delay below the target grows it additively.  Shares
    the Swift-style sub-packet pacing machinery.
    """

    name = "timely"

    #: Gradient smoothing (EWMA weight) and the decrease scaler.
    ALPHA = 0.5
    BETA = 0.8

    def __init__(self, params: CLibParams):
        super().__init__(params)
        self._prev_rtt: float | None = None
        self._gradient = 0.0

    def on_ack(self, rtt_ns: int) -> None:
        self.outstanding = max(0, self.outstanding - 1)
        self.acks += 1
        if self._prev_rtt is None:
            self._prev_rtt = float(rtt_ns)
            return
        delta = (rtt_ns - self._prev_rtt) / max(self.params.target_rtt_ns, 1)
        self._prev_rtt = float(rtt_ns)
        self._gradient = ((1 - self.ALPHA) * self._gradient
                          + self.ALPHA * delta)
        if rtt_ns < self.params.target_rtt_ns or self._gradient <= 0:
            self.cwnd = min(self.params.cwnd_max,
                            self.cwnd + self.params.cwnd_additive_increase
                            / max(self.cwnd, 1.0))
        else:
            factor = max(0.3, 1.0 - self.BETA * min(self._gradient, 1.0))
            self.cwnd = max(self.params.cwnd_min, self.cwnd * factor)
            self.decreases += 1


class StaticWindowController(CongestionController):
    """No adaptation: a fixed window (the what-if-we-do-nothing baseline)."""

    name = "static"

    def on_ack(self, rtt_ns: int) -> None:
        self.outstanding = max(0, self.outstanding - 1)
        self.acks += 1

    def on_timeout(self) -> None:
        self.outstanding = max(0, self.outstanding - 1)


#: Algorithm registry for make_congestion_controller.
CC_ALGORITHMS = {
    "swift": CongestionController,
    "timely": TimelyController,
    "static": StaticWindowController,
}


def make_congestion_controller(params: CLibParams) -> CongestionController:
    """Build the controller named by ``params.cc_algorithm``."""
    algorithm = CC_ALGORITHMS.get(params.cc_algorithm)
    if algorithm is None:
        raise ValueError(f"unknown congestion algorithm "
                         f"{params.cc_algorithm!r}; "
                         f"choose from {sorted(CC_ALGORITHMS)}")
    return algorithm(params)


class IncastController:
    """Bounds outstanding expected-response bytes arriving at this CN."""

    def __init__(self, params: CLibParams):
        self.iwnd_bytes = params.iwnd_bytes
        self.outstanding_bytes = 0

    def can_send(self, expected_response_bytes: int) -> bool:
        if expected_response_bytes > self.iwnd_bytes:
            # A single over-window response is admitted alone rather than
            # deadlocking; it simply must be the only one outstanding.
            return self.outstanding_bytes == 0
        return (self.outstanding_bytes + expected_response_bytes
                <= self.iwnd_bytes)

    def on_send(self, expected_response_bytes: int) -> None:
        self.outstanding_bytes += expected_response_bytes

    def on_complete(self, expected_response_bytes: int) -> None:
        self.outstanding_bytes = max(
            0, self.outstanding_bytes - expected_response_bytes)

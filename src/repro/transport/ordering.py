"""Intra-thread inter-request ordering at the CN (paper section 4.5).

Synchronous requests can never reorder (one outstanding per thread), so
the tracker exists for asynchronous requests: CLib matches every new
request's virtual page numbers against in-flight ones and blocks it until
any WAR/RAW/WAW conflict drains.  Tracking is page-granular — the paper's
stated trade-off accepting false dependencies for tiny metadata.

A *release* (rrelease/rfence/runlock) waits for every in-flight request
of the thread, giving the ARMv8-like release consistency of section 3.1.

Granularity is configurable (the paper's stated future work): ``"page"``
(the paper's default — tiny metadata, false dependencies possible) or
``"byte"`` (exact range overlap — no false dependencies, more tracking
state per in-flight request).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.addr import AccessType, PageSpec
from repro.sim import Environment, Event


@dataclass
class _Inflight:
    """One in-flight request: its footprint, kind, and completion event."""

    pages: frozenset[int]
    start: int
    end: int
    is_write: bool
    done: Event
    tag: int = 0


class DependencyTracker:
    """WAR/RAW/WAW detection for one thread at configurable granularity."""

    GRANULARITIES = ("page", "byte")

    def __init__(self, env: Environment, page_spec: PageSpec,
                 granularity: str = "page"):
        if granularity not in self.GRANULARITIES:
            raise ValueError(f"granularity must be one of "
                             f"{self.GRANULARITIES}, got {granularity!r}")
        self.env = env
        self.page_spec = page_spec
        self.granularity = granularity
        self._inflight: list[_Inflight] = []
        self._next_tag = 0
        self.blocked_count = 0   # requests that had to wait (diagnostics)

    @property
    def inflight_count(self) -> int:
        return len(self._inflight)

    def _pages_of(self, va: int, size: int) -> frozenset[int]:
        return frozenset(self.page_spec.pages_spanned(va, size))

    def _overlaps(self, entry: _Inflight, va: int, size: int,
                  pages: frozenset[int]) -> bool:
        if self.granularity == "byte":
            return entry.start < va + size and va < entry.end
        return bool(pages & entry.pages)

    def conflicts(self, va: int, size: int, is_write: bool) -> list[Event]:
        """Completion events of every conflicting in-flight request.

        Conflict = overlapping footprint and at least one side writes
        (RAW, WAR, WAW); two reads never conflict.
        """
        pages = self._pages_of(va, size)
        return [
            entry.done for entry in self._inflight
            if (is_write or entry.is_write)
            and self._overlaps(entry, va, size, pages)
        ]

    def register(self, va: int, size: int, is_write: bool) -> Event:
        """Admit a request; returns the completion event to fire later."""
        done = self.env.event()
        entry = _Inflight(pages=self._pages_of(va, size), start=va,
                          end=va + size, is_write=is_write,
                          done=done, tag=self._next_tag)
        self._next_tag += 1
        self._inflight.append(entry)
        done.callbacks.append(lambda _event, _entry=entry: self._retire(_entry))
        return done

    def _retire(self, entry: _Inflight) -> None:
        try:
            self._inflight.remove(entry)
        except ValueError:
            pass

    def wait_for_conflicts(self, va: int, size: int, is_write: bool):
        """Process-generator: block until conflicting requests finish."""
        events = self.conflicts(va, size, is_write)
        if events:
            self.blocked_count += 1
            yield self.env.all_of(events)

    def drain(self):
        """Process-generator: wait for *all* in-flight requests (release)."""
        events = [entry.done for entry in self._inflight]
        if events:
            yield self.env.all_of(events)


class OrderingScope:
    """Convenience bundle: one tracker per thread, made on demand."""

    def __init__(self, env: Environment, page_spec: PageSpec):
        self.env = env
        self.page_spec = page_spec
        self._trackers: dict[int, DependencyTracker] = {}

    def tracker(self, thread_id: int) -> DependencyTracker:
        tracker = self._trackers.get(thread_id)
        if tracker is None:
            tracker = DependencyTracker(self.env, self.page_spec)
            self._trackers[thread_id] = tracker
        return tracker

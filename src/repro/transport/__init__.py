"""CN-side network transport (paper section 4.4).

The MN is transportless, so everything a reliable transport normally does
lives here at the compute node: request/response matching (responses act
as ACKs), per-request retry with fresh request IDs, delay-based AIMD
congestion control with a sub-packet floor, and incast control over
expected response bytes.
"""

from repro.transport.congestion import (
    CC_ALGORITHMS,
    CongestionController,
    IncastController,
    StaticWindowController,
    TimelyController,
    make_congestion_controller,
)
from repro.transport.ordering import DependencyTracker, OrderingScope
from repro.transport.clib_transport import (
    RequestFailed,
    RequestFailedError,
    RequestOutcome,
    Transport,
)

__all__ = [
    "CC_ALGORITHMS",
    "CongestionController",
    "DependencyTracker",
    "IncastController",
    "OrderingScope",
    "RequestFailed",
    "RequestFailedError",
    "RequestOutcome",
    "StaticWindowController",
    "TimelyController",
    "Transport",
    "make_congestion_controller",
]

"""A unified virtual address space spanning multiple CBoards.

CN-side companion to the global controller: applications allocate from a
single flat *distributed* address space; each allocation becomes a coarse
region placed on some board.  Data accesses go **directly** to the
backing board (the controller is not on the data path); when a region has
migrated, the stale access fails fast and the space transparently
refreshes its cached lease and retries.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.clib.client import ClioThread, ComputeNode, RemoteAccessError
from repro.distributed.controller import GlobalController, RegionLease


@dataclass
class _Mapping:
    """CN-cached *snapshot* of a lease (the controller's copy may move on)."""

    base: int              # distributed VA base
    region_id: int
    size: int
    cached_mn: str
    cached_va: int
    cached_generation: int


class DistributedAddressSpace:
    """One process's RAS federated across every board the controller owns."""

    def __init__(self, node: ComputeNode, controller: GlobalController,
                 pid: int):
        self.node = node
        self.controller = controller
        self.pid = pid
        self._threads: dict[str, ClioThread] = {}
        self._bases: list[int] = []
        self._mappings: list[_Mapping] = []
        self._next_base = 1 << 22
        self.lease_refreshes = 0

    # -- board access -------------------------------------------------------------

    def _thread(self, mn: str) -> ClioThread:
        thread = self._threads.get(mn)
        if thread is None:
            process = self.node.process(mn)
            process.pid = self.pid   # one PID across all backing boards
            thread = process.thread()
            self._threads[mn] = thread
        return thread

    # -- allocation ------------------------------------------------------------------

    def alloc(self, size: int):
        """Process-generator: allocate a region; returns its distributed VA."""
        lease = yield from self.controller.allocate(self.pid, size)
        base = self._next_base
        self._next_base += lease.size
        mapping = _Mapping(base=base, region_id=lease.region_id,
                           size=lease.size, cached_mn=lease.mn,
                           cached_va=lease.va,
                           cached_generation=lease.generation)
        index = bisect.bisect_left(self._bases, base)
        self._bases.insert(index, base)
        self._mappings.insert(index, mapping)
        return base

    def free(self, dva: int):
        """Process-generator: release the region at ``dva``."""
        index = bisect.bisect_left(self._bases, dva)
        if index >= len(self._bases) or self._bases[index] != dva:
            raise KeyError(f"no region at dva={dva:#x}")
        mapping = self._mappings[index]
        yield from self.controller.free(mapping.region_id)
        self._bases.pop(index)
        self._mappings.pop(index)

    def _resolve(self, dva: int, size: int) -> tuple[_Mapping, int]:
        index = bisect.bisect_right(self._bases, dva) - 1
        if index < 0:
            raise ValueError(f"dva {dva:#x} unmapped")
        mapping = self._mappings[index]
        offset = dva - mapping.base
        if offset + size > mapping.size:
            raise ValueError(
                f"access [{dva:#x}, +{size}) crosses region boundary")
        return mapping, offset

    # -- data path ----------------------------------------------------------------------

    def _refresh(self, mapping: _Mapping) -> None:
        lease = self.controller.lookup(mapping.region_id)
        mapping.cached_mn = lease.mn
        mapping.cached_va = lease.va
        mapping.cached_generation = lease.generation
        self.lease_refreshes += 1

    def read(self, dva: int, size: int):
        """Process-generator: read, chasing a migrated region if needed."""
        mapping, offset = self._resolve(dva, size)
        for attempt in range(2):
            thread = self._thread(mapping.cached_mn)
            try:
                data = yield from thread.rread(mapping.cached_va + offset,
                                               size)
                return data
            except RemoteAccessError:
                if attempt == 1:
                    raise
                self._refresh(mapping)

    def write(self, dva: int, data: bytes):
        """Process-generator: write, chasing a migrated region if needed."""
        mapping, offset = self._resolve(dva, len(data))
        for attempt in range(2):
            thread = self._thread(mapping.cached_mn)
            try:
                yield from thread.rwrite(mapping.cached_va + offset, data)
                return
            except RemoteAccessError:
                if attempt == 1:
                    raise
                self._refresh(mapping)

    # -- diagnostics ------------------------------------------------------------------------

    def placement(self) -> dict[int, str]:
        """dva base -> board name the CN currently believes (cached)."""
        return {mapping.base: mapping.cached_mn
                for mapping in self._mappings}

"""Distributed memory-node platform (paper section 3.3).

The paper scopes a multi-CBoard platform to future work but sketches the
design it would follow (LegoOS-style): a **global controller** manages the
whole memory space at coarse granularity while each MN manages its own
memory at fine granularity; MNs may be over-committed, and an MN under
memory pressure migrates data to another MN, coordinated by the
controller.  MN failure handling is left to applications.

This subpackage implements that sketch over unmodified CBoards.
"""

from repro.distributed.controller import (
    GlobalController,
    LeaseLost,
    PlacementError,
    RegionLease,
)
from repro.distributed.space import DistributedAddressSpace

__all__ = [
    "DistributedAddressSpace",
    "GlobalController",
    "LeaseLost",
    "PlacementError",
    "RegionLease",
]

"""The global controller: coarse-grained placement plus migration.

Placement follows the LegoOS two-level split: the controller only decides
*which MN* backs each coarse region (and moves regions when an MN runs
hot); everything fine-grained — translation, faults, permissions — stays
on the individual CBoards, unchanged.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.cboard import CBoard
from repro.sim import Environment

#: Controller bookkeeping cost per request (it is off the data path).
CONTROLLER_NS = 2_000


@dataclass
class RegionLease:
    """One coarse-grained region: a VA range on a specific MN."""

    region_id: int
    mn: str                 # board currently backing the region
    va: int                 # VA of the backing allocation on that board
    size: int
    pid: int                # PID used on the backing board
    generation: int = 0     # bumped on every migration


@dataclass
class _BoardState:
    board: CBoard
    regions: set = field(default_factory=set)


class PlacementError(Exception):
    """No MN can host the requested region."""


class LeaseLost(Exception):
    """The board backing a lease is (believed) dead.

    The lease itself is not discarded: the backing page table survives a
    crash, so once the board restarts — and the health monitor re-trusts
    it — lookups succeed again with the same VA.
    """

    def __init__(self, region_id: int, mn: str):
        super().__init__(
            f"region {region_id} is on {mn}, which is marked dead")
        self.region_id = region_id
        self.mn = mn


class GlobalController:
    """Places coarse regions on boards; migrates under memory pressure.

    The controller is deliberately *not* on the data path: CNs cache
    leases and talk to boards directly; they come back here only to
    allocate, free, or refresh a lease after a migration.

    With a ``health`` monitor attached, placement and migration skip
    boards believed dead, and :meth:`lookup`/:meth:`free` on a region
    backed by one raise :class:`LeaseLost` — the typed signal a CN uses
    to tell "retry later" apart from "the region never existed".
    """

    _region_ids = itertools.count(1)

    def __init__(self, env: Environment, boards: list[CBoard],
                 pressure_threshold: float = 0.85, health=None):
        if not boards:
            raise ValueError("need at least one board")
        if not 0.0 < pressure_threshold <= 1.0:
            raise ValueError(
                f"pressure_threshold must be in (0, 1], got {pressure_threshold}")
        self.env = env
        self.pressure_threshold = pressure_threshold
        self.health = health
        self._boards = {board.name: _BoardState(board) for board in boards}
        self._leases: dict[int, RegionLease] = {}
        self._migrating: dict[int, Any] = {}   # region_id -> drain event
        self.migrations = 0
        self.failed_migrations = 0
        # Runtime correctness checking (repro.verify); when set, the
        # shadow oracle follows regions across migrations.
        self.verifier = None
        # Cache coherence (repro.cache); when set, migration and free
        # recall every cached copy of the region before touching it.
        self.cache_directory = None

    # -- placement ---------------------------------------------------------------------

    def _alive(self, name: str) -> bool:
        """Is the board usable?  Health-monitor belief when attached
        (detection lag included), the board's true state otherwise."""
        if self.health is not None:
            return self.health.is_alive(name)
        return self._boards[name].board.alive

    def _utilization(self, name: str) -> float:
        board = self._boards[name].board
        return board.page_table.entry_count / board.page_table.physical_pages

    def _pick_board(self, size: int) -> Optional[str]:
        """Least-utilized live board that can still host ``size`` bytes."""
        candidates = sorted(self._boards, key=self._utilization)
        for name in candidates:
            if not self._alive(name):
                continue
            board = self._boards[name].board
            pages_needed = board.page_spec.page_count(size)
            free_slots = (board.page_table.physical_pages
                          - board.page_table.entry_count)
            if pages_needed <= free_slots:
                return name
        return None

    def allocate(self, pid: int, size: int):
        """Process-generator: place and allocate a region; returns a lease."""
        yield self.env.timeout(CONTROLLER_NS)
        name = self._pick_board(size)
        if name is None:
            raise PlacementError(f"no MN can host {size} bytes")
        state = self._boards[name]
        response = yield from state.board.slow_path.handle_alloc(pid, size)
        if not response.ok:
            raise PlacementError(
                f"{name} rejected a {size}-byte region: {response.error}")
        lease = RegionLease(region_id=next(self._region_ids), mn=name,
                            va=response.va, size=response.size, pid=pid)
        self._leases[lease.region_id] = lease
        state.regions.add(lease.region_id)
        return lease

    def free(self, region_id: int):
        """Process-generator: release a region on its current board.

        A free that races a migration waits for the move to finish first
        (the lease's board/VA are in flux until then); a free of a region
        on a dead board raises :class:`LeaseLost` without dropping the
        lease, so it can be retried after the board recovers.
        """
        yield self.env.timeout(CONTROLLER_NS)
        while region_id in self._migrating:
            yield self._migrating[region_id]
        lease = self._leases.get(region_id)
        if lease is None:
            raise KeyError(f"unknown region {region_id}")
        if not self._alive(lease.mn):
            raise LeaseLost(region_id, lease.mn)
        frozen = None
        if self.cache_directory is not None:
            # Recall (and flush) every cached copy, and hold the region's
            # line locks across the free so no fill resurrects dead lines.
            frozen = yield from self.cache_directory.freeze_region(
                lease.pid, lease.mn, lease.va, lease.size)
        try:
            del self._leases[region_id]
            state = self._boards[lease.mn]
            state.regions.discard(region_id)
            yield from state.board.slow_path.handle_free(lease.pid, lease.va)
        finally:
            if frozen is not None:
                self.cache_directory.release_region(frozen)

    def lookup(self, region_id: int) -> RegionLease:
        """Current lease (CNs call this to refresh after a migration).

        Raises :class:`LeaseLost` when the backing board is believed
        dead — the CN should back off and refresh instead of hammering a
        dark port.
        """
        lease = self._leases.get(region_id)
        if lease is None:
            raise KeyError(f"unknown region {region_id}")
        if not self._alive(lease.mn):
            raise LeaseLost(region_id, lease.mn)
        return lease

    # -- migration ------------------------------------------------------------------------

    def pressured_boards(self) -> list[str]:
        return [name for name in self._boards
                if self._utilization(name) > self.pressure_threshold]

    def rebalance(self):
        """Process-generator: migrate regions off boards over threshold.

        Returns the number of regions moved.  Data is copied through the
        controller (read from the old board, written to the new one) and
        the lease generation is bumped so CN caches invalidate.
        """
        moved = 0
        for name in self.pressured_boards():
            if not self._alive(name):
                continue   # can't read data off a dead board
            state = self._boards[name]
            # Move the largest region first (fastest pressure relief).
            region_ids = sorted(
                state.regions,
                key=lambda rid: self._leases[rid].size, reverse=True)
            for region_id in region_ids:
                if self._utilization(name) <= self.pressure_threshold:
                    break
                lease = self._leases[region_id]
                target = self._pick_target(exclude=name, size=lease.size)
                if target is None:
                    break
                ok = yield from self._migrate(lease, target)
                if ok:
                    moved += 1
                # A False return means the target filled between picking
                # it and allocating on it — re-pick for the next region.
        return moved

    def _pick_target(self, exclude: str, size: int) -> Optional[str]:
        candidates = sorted((name for name in self._boards
                             if name != exclude), key=self._utilization)
        for name in candidates:
            if not self._alive(name):
                continue
            board = self._boards[name].board
            pages = board.page_spec.page_count(size)
            free_slots = (board.page_table.physical_pages
                          - board.page_table.entry_count)
            if (pages <= free_slots
                    and self._utilization(name) < self.pressure_threshold):
                return name
        return None

    def _migrate(self, lease: RegionLease, target: str):
        """Process-generator: move one region; True on success.

        Returns False — leaving the lease untouched on its source —
        when the target cannot take the allocation after all (it may
        have filled between the capacity check and the alloc).  While
        the copy runs the region is marked in ``_migrating`` so a
        concurrent :meth:`free` waits instead of freeing a VA that is
        about to change.
        """
        drain = self.env.event()
        self._migrating[lease.region_id] = drain
        frozen = None
        try:
            yield self.env.timeout(CONTROLLER_NS)
            source_state = self._boards[lease.mn]
            target_state = self._boards[target]
            response = yield from target_state.board.slow_path.handle_alloc(
                lease.pid, lease.size)
            if not response.ok:
                self.failed_migrations += 1
                return False
            if self.cache_directory is not None:
                # Recall every cached copy first: dirty lines flush to the
                # *source* board (the keys still name it), so the copy
                # loop below reads current bytes.  The region's line locks
                # stay held until the lease points at the target, blocking
                # cached traffic for the duration.
                frozen = yield from self.cache_directory.freeze_region(
                    lease.pid, lease.mn, lease.va, lease.size)
            # Copy in page-sized chunks (only pages that were ever touched
            # carry data; untouched pages read as zero on both sides).
            from repro.core.addr import AccessType
            from repro.core.pipeline import Status
            page = source_state.board.page_spec.page_size
            offset = 0
            while offset < lease.size:
                chunk = min(page, lease.size - offset)
                result = yield from source_state.board.execute_local(
                    lease.pid, AccessType.READ, lease.va + offset, chunk)
                if result.status is Status.OK and any(result.data):
                    yield from target_state.board.execute_local(
                        lease.pid, AccessType.WRITE, response.va + offset,
                        chunk, data=result.data)
                offset += chunk
            yield from source_state.board.slow_path.handle_free(
                lease.pid, lease.va)
            source_state.regions.discard(lease.region_id)
            target_state.regions.add(lease.region_id)
            old_mn, old_va = lease.mn, lease.va
            lease.mn = target
            lease.va = response.va
            lease.generation += 1
            self.migrations += 1
            if self.verifier is not None:
                self.verifier.on_region_migrated(lease, old_mn, old_va)
            return True
        finally:
            if frozen is not None:
                self.cache_directory.release_region(frozen)
            del self._migrating[lease.region_id]
            if not drain.triggered:
                drain.succeed()

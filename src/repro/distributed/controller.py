"""The global controller: coarse-grained placement plus migration.

Placement follows the LegoOS two-level split: the controller only decides
*which MN* backs each coarse region (and moves regions when an MN runs
hot); everything fine-grained — translation, faults, permissions — stays
on the individual CBoards, unchanged.

Two placement paths coexist:

* **Legacy** (no shard ring): least-utilized live board.  The ordering is
  maintained incrementally — a lazy min-heap of ``(utilization, index)``
  entries revalidated against cached page-table counts — so an allocation
  costs O(changed · log n) instead of the former O(n log n) full re-sort,
  which matters at 64 boards.
* **Sharded** (``shard=`` a :class:`~repro.rack.shard.ShardRing`): the
  region id hashes onto the ring and the preference walk (home, then
  successors) picks the first live board with capacity.  Any placement
  away from the home lands in the ring's override directory, which is how
  the rack membership layer later finds strays to rebalance.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from heapq import heappush, heappop
from typing import Any, Optional

from repro.core.cboard import CBoard
from repro.sim import Environment

#: Controller bookkeeping cost per request (it is off the data path).
CONTROLLER_NS = 2_000

#: Settle window after write-fencing a migrating region: writes that had
#: already passed the permission check drain into source DRAM before the
#: copy starts, so every acknowledged byte makes it across.  Bounds the
#: fast path's worst-case residency (ingest + stages + fault + DRAM).
FENCE_SETTLE_NS = 10_000


@dataclass
class RegionLease:
    """One coarse-grained region: a VA range on a specific MN."""

    region_id: int
    mn: str                 # board currently backing the region
    va: int                 # VA of the backing allocation on that board
    size: int
    pid: int                # PID used on the backing board
    generation: int = 0     # bumped on every migration
    tenant: str = "default"  # tenant charged for the capacity


@dataclass
class _BoardState:
    board: CBoard
    index: int                         # registration order (tie-break)
    regions: set = field(default_factory=set)
    cached_entries: int = -1           # page-table count behind the heap


class PlacementError(Exception):
    """No MN can host the requested region."""


class TenantQuotaExceeded(PlacementError):
    """The tenant's capacity quota cannot cover the requested region.

    A subclass of :class:`PlacementError` so quota-unaware callers keep
    working, but typed so a tenant-aware CN can tell "the pool is full"
    apart from "you hit your own ceiling — free something first".
    """

    def __init__(self, tenant: str, requested: int, used: int, quota: int):
        super().__init__(
            f"tenant {tenant!r} quota exceeded: {requested} bytes requested,"
            f" {used}/{quota} bytes already in use")
        self.tenant = tenant
        self.requested = requested
        self.used = used
        self.quota = quota


class LeaseLost(Exception):
    """The board backing a lease is (believed) dead.

    The lease itself is not discarded: the backing page table survives a
    crash, so once the board restarts — and the health monitor re-trusts
    it — lookups succeed again with the same VA.
    """

    def __init__(self, region_id: int, mn: str):
        super().__init__(
            f"region {region_id} is on {mn}, which is marked dead")
        self.region_id = region_id
        self.mn = mn


class GlobalController:
    """Places coarse regions on boards; migrates under memory pressure.

    The controller is deliberately *not* on the data path: CNs cache
    leases and talk to boards directly; they come back here only to
    allocate, free, or refresh a lease after a migration.

    With a ``health`` monitor attached, placement and migration skip
    boards believed dead, and :meth:`lookup`/:meth:`free` on a region
    backed by one raise :class:`LeaseLost` — the typed signal a CN uses
    to tell "retry later" apart from "the region never existed".

    With a ``shard`` ring attached, placement delegates to the ring's
    preference walk (see module docstring) and the controller keeps the
    ring's override directory in sync on every placement, migration, and
    free.
    """

    def __init__(self, env: Environment, boards: list[CBoard],
                 pressure_threshold: float = 0.85, health=None, shard=None,
                 qos=None, registry=None):
        if not boards:
            raise ValueError("need at least one board")
        if not 0.0 < pressure_threshold <= 1.0:
            raise ValueError(
                f"pressure_threshold must be in (0, 1], got {pressure_threshold}")
        self.env = env
        self.pressure_threshold = pressure_threshold
        self.health = health
        self.shard = shard
        # Region ids are per-controller (not process-global): rack
        # fingerprints hash them onto the shard ring, so same-seed runs
        # must draw the same ids no matter what ran earlier in the
        # process.
        self._region_ids = itertools.count(1)
        self._boards: dict[str, _BoardState] = {}
        self._util_heap: list[tuple[float, int, str]] = []
        self._leases: dict[int, RegionLease] = {}
        for board in boards:
            self.add_board(board)
        self._migrating: dict[int, Any] = {}   # region_id -> drain event
        self._freeing: set[int] = set()        # frees past their wait loop
        self.draining: set[str] = set()        # boards excluded from placement
        self.migrations = 0
        self.failed_migrations = 0
        self.aborted_migrations = 0            # source died mid-copy
        self.evictions = 0                     # regions re-homed off dead boards
        # Runtime correctness checking (repro.verify); when set, the
        # shadow oracle follows regions across migrations.
        self.verifier = None
        # Cache coherence (repro.cache); when set, migration and free
        # recall every cached copy of the region before touching it.
        self.cache_directory = None
        # Capacity QoS: with a QoSParams attached, allocations are
        # charged to tenants and a tenant with quota_bytes set is
        # rejected (typed) once its page-rounded footprint would pass
        # the ceiling.  Tenants outside the config — including the
        # implicit "default" — are accounted but never capped.
        self.qos = qos
        self._quotas: dict[str, Optional[int]] = {}
        if qos is not None:
            for tenant in qos.tenants:
                self._quotas[tenant.name] = tenant.quota_bytes
        self._tenant_usage: dict[str, int] = {}
        self.quota_rejections = 0
        if registry is not None:
            self._register_tenant_metrics(registry)

    def _register_tenant_metrics(self, registry) -> None:
        scope = registry.scope("tenant")
        scope.counter("quota_rejections",
                      "allocations refused by a tenant quota",
                      fn=lambda: self.quota_rejections)
        for name, quota in self._quotas.items():
            tenant_scope = registry.scope(f"tenant.{name}")
            tenant_scope.gauge("used_bytes", "capacity charged to the tenant",
                              unit="bytes",
                              fn=lambda n=name: self._tenant_usage.get(n, 0))
            tenant_scope.gauge("quota_bytes",
                              "capacity ceiling (0 = uncapped)",
                              unit="bytes",
                              fn=lambda q=quota: q or 0)
            tenant_scope.gauge("regions", "regions owned by the tenant",
                              fn=lambda n=name: sum(
                                  1 for lease in self._leases.values()
                                  if lease.tenant == n))

    def tenant_usage(self, tenant: str) -> int:
        """Bytes currently charged to ``tenant`` (page-rounded)."""
        return self._tenant_usage.get(tenant, 0)

    # -- board registry ----------------------------------------------------------------

    def add_board(self, board: CBoard) -> None:
        """Register a board (construction, or elastic join later).

        With a shard ring attached the board's virtual points go onto the
        ring too, so new allocations can land on it immediately.
        """
        if board.name in self._boards:
            raise ValueError(f"board {board.name!r} already registered")
        state = _BoardState(board, index=len(self._boards))
        self._boards[board.name] = state
        self._note_utilization(board.name)
        if self.shard is not None and board.name not in self.shard:
            self.shard.add_board(board.name)
            self._refresh_shard_directory()

    def remove_board(self, name: str) -> None:
        """Deregister an (empty) board — the elastic-drain endpoint."""
        state = self._boards.get(name)
        if state is None:
            raise KeyError(f"unknown board {name!r}")
        if state.regions:
            raise ValueError(
                f"board {name!r} still backs {len(state.regions)} regions")
        del self._boards[name]
        if self.shard is not None and name in self.shard:
            self.shard.remove_board(name)
            self._refresh_shard_directory()
        # Stale heap entries for the departed board are skipped lazily.

    def _refresh_shard_directory(self) -> None:
        """Recompute the ring's override directory after an arc move."""
        self.shard.refresh_overrides(
            {region_id: lease.mn
             for region_id, lease in self._leases.items()})

    def boards(self) -> list[str]:
        return list(self._boards)

    def regions_on(self, name: str) -> list[int]:
        """Region ids currently backed by ``name`` (sorted, stable)."""
        return sorted(self._boards[name].regions)

    # -- placement ---------------------------------------------------------------------

    def _alive(self, name: str) -> bool:
        """Is the board usable?  Health-monitor belief when attached
        (detection lag included), the board's true state otherwise."""
        if self.health is not None:
            return self.health.is_alive(name)
        return self._boards[name].board.alive

    def _utilization(self, name: str) -> float:
        board = self._boards[name].board
        return board.page_table.entry_count / board.page_table.physical_pages

    def _note_utilization(self, name: str) -> None:
        """Refresh one board's heap entry if its page table changed."""
        state = self._boards[name]
        entries = state.board.page_table.entry_count
        if entries != state.cached_entries:
            state.cached_entries = entries
            heappush(self._util_heap,
                     (entries / state.board.page_table.physical_pages,
                      state.index, name))

    def _refresh_utilizations(self) -> None:
        """Cheap O(n) staleness sweep: integer compares, no sorting.

        Boards change behind the controller's back (direct slow-path
        allocations, crashes that rebuild page tables), so pick time
        reconciles the cached counts; only *changed* boards pay the
        O(log n) heap push.
        """
        for name in self._boards:
            self._note_utilization(name)

    def _fits(self, name: str, size: int) -> bool:
        board = self._boards[name].board
        pages_needed = board.page_spec.page_count(size)
        free_slots = (board.page_table.physical_pages
                      - board.page_table.entry_count)
        return pages_needed <= free_slots

    def _pick_board(self, size: int, exclude: Optional[str] = None,
                    below_threshold: bool = False) -> Optional[str]:
        """Least-utilized live board that can still host ``size`` bytes.

        Incrementally maintained: pops the lazy heap in (utilization,
        registration) order — identical to the former stable full sort —
        skipping entries whose cached count went stale, and pushes every
        still-valid entry back for the next pick.
        """
        self._refresh_utilizations()
        heap = self._util_heap
        valid: list[tuple[float, int, str]] = []
        chosen = None
        while heap:
            entry = heappop(heap)
            util, _index, name = entry
            state = self._boards.get(name)
            if state is None:
                continue            # board deregistered: drop the entry
            expected = (state.cached_entries
                        / state.board.page_table.physical_pages)
            if util != expected:
                continue            # superseded by a fresher entry
            valid.append(entry)
            if name == exclude or name in self.draining:
                continue
            if not self._alive(name):
                continue
            if below_threshold and util >= self.pressure_threshold:
                continue
            if self._fits(name, size):
                chosen = name
                break
        for entry in valid:
            heappush(heap, entry)
        return chosen

    def _pick_sharded(self, key: int, size: int,
                      exclude: Optional[str] = None) -> Optional[str]:
        """Ring preference walk: home first, then clockwise successors."""
        for name in self.shard.preference(key):
            if name == exclude or name not in self._boards:
                continue
            if name in self.draining or not self._alive(name):
                continue
            if self._fits(name, size):
                return name
        return None

    def allocate(self, pid: int, size: int, tenant: str = "default"):
        """Process-generator: place and allocate a region; returns a lease.

        ``tenant`` is charged for the region's capacity.  A tenant whose
        :class:`~repro.params.TenantConfig` pins ``quota_bytes`` is
        refused with :class:`TenantQuotaExceeded` once the request would
        push it past the ceiling; the check runs before placement so a
        capped tenant cannot even transiently claim board capacity.
        Usage is charged at the board's page-rounded grant.
        """
        yield self.env.timeout(CONTROLLER_NS)
        quota = self._quotas.get(tenant)
        used = self._tenant_usage.get(tenant, 0)
        if quota is not None and used + size > quota:
            self.quota_rejections += 1
            raise TenantQuotaExceeded(tenant, size, used, quota)
        region_id = next(self._region_ids)
        if self.shard is not None:
            name = self._pick_sharded(region_id, size)
        else:
            name = self._pick_board(size)
        if name is None:
            raise PlacementError(f"no MN can host {size} bytes")
        state = self._boards[name]
        response = yield from state.board.slow_path.handle_alloc(pid, size)
        if not response.ok:
            raise PlacementError(
                f"{name} rejected a {size}-byte region: {response.error}")
        lease = RegionLease(region_id=region_id, mn=name,
                            va=response.va, size=response.size, pid=pid,
                            tenant=tenant)
        self._leases[lease.region_id] = lease
        self._tenant_usage[tenant] = used + response.size
        state.regions.add(lease.region_id)
        self._note_utilization(name)
        if self.shard is not None:
            self.shard.record_placement(region_id, name)
        return lease

    def free(self, region_id: int):
        """Process-generator: release a region on its current board.

        A free that races a migration waits for the move to finish first
        (the lease's board/VA are in flux until then), then *claims* the
        region — ``_freeing`` — before it yields again, so no migration
        can start mid-free and read half-released pages.  A free of a
        region on a dead board raises :class:`LeaseLost` without
        dropping the lease, so it can be retried after the board
        recovers; a free that loses the claim race to another free
        raises ``KeyError`` like any double free.
        """
        yield self.env.timeout(CONTROLLER_NS)
        while region_id in self._migrating:
            yield self._migrating[region_id]
        lease = self._leases.get(region_id)
        if lease is None or region_id in self._freeing:
            raise KeyError(f"unknown region {region_id}")
        if not self._alive(lease.mn):
            raise LeaseLost(region_id, lease.mn)
        # Claim before the first yield below: rebalance/_migrate check the
        # claim, closing the free-starts-then-migration-reads race.
        self._freeing.add(region_id)
        frozen = None
        try:
            if self.cache_directory is not None:
                # Recall (and flush) every cached copy, and hold the region's
                # line locks across the free so no fill resurrects dead lines.
                frozen = yield from self.cache_directory.freeze_region(
                    lease.pid, lease.mn, lease.va, lease.size)
            del self._leases[region_id]
            remaining = self._tenant_usage.get(lease.tenant, 0) - lease.size
            self._tenant_usage[lease.tenant] = max(0, remaining)
            state = self._boards[lease.mn]
            state.regions.discard(region_id)
            if self.shard is not None:
                self.shard.clear_override(region_id)
            yield from state.board.slow_path.handle_free(lease.pid, lease.va)
            self._note_utilization(lease.mn)
        finally:
            self._freeing.discard(region_id)
            if frozen is not None:
                self.cache_directory.release_region(frozen)

    def lookup(self, region_id: int) -> RegionLease:
        """Current lease (CNs call this to refresh after a migration).

        Raises :class:`LeaseLost` when the backing board is believed
        dead — the CN should back off and refresh instead of hammering a
        dark port.
        """
        lease = self._leases.get(region_id)
        if lease is None:
            raise KeyError(f"unknown region {region_id}")
        if not self._alive(lease.mn):
            raise LeaseLost(region_id, lease.mn)
        return lease

    # -- migration ------------------------------------------------------------------------

    def pressured_boards(self) -> list[str]:
        return [name for name in self._boards
                if self._utilization(name) > self.pressure_threshold]

    def rebalance(self):
        """Process-generator: migrate regions off boards over threshold.

        Returns the number of regions moved.  Data is copied through the
        controller (read from the old board, written to the new one) and
        the lease generation is bumped so CN caches invalidate.
        """
        moved = 0
        for name in self.pressured_boards():
            if not self._alive(name):
                continue   # can't read data off a dead board
            state = self._boards[name]
            # Move the largest region first (fastest pressure relief).
            region_ids = sorted(
                (rid for rid in state.regions
                 if rid in self._leases
                 and rid not in self._freeing
                 and rid not in self._migrating),
                key=lambda rid: self._leases[rid].size, reverse=True)
            for region_id in region_ids:
                if self._utilization(name) <= self.pressure_threshold:
                    break
                lease = self._leases.get(region_id)
                if lease is None or region_id in self._freeing:
                    continue   # freed while earlier migrations ran
                target = self._pick_target(exclude=name, size=lease.size,
                                           key=region_id)
                if target is None:
                    break
                ok = yield from self._migrate(lease, target)
                if ok:
                    moved += 1
                # A False return means the target filled between picking
                # it and allocating on it — re-pick for the next region.
        return moved

    def _pick_target(self, exclude: str, size: int,
                     key: Optional[int] = None) -> Optional[str]:
        if self.shard is not None and key is not None:
            return self._pick_sharded(key, size, exclude=exclude)
        return self._pick_board(size, exclude=exclude, below_threshold=True)

    def migrate_region(self, region_id: int, target: str):
        """Process-generator: move one region by id; True on success.

        The public entry the membership layer uses for drains and
        rebalances; unlike :meth:`_migrate` it tolerates a region that
        vanished (freed) between scheduling and execution.
        """
        lease = self._leases.get(region_id)
        if lease is None or region_id in self._freeing:
            return False
        if lease.mn == target:
            return True
        result = yield from self._migrate(lease, target)
        return result

    def evict_region(self, region_id: int):
        """Process-generator: re-home a region off a dead board, zero-filled.

        The lease-expiry path: the source board is gone, so unlike
        :meth:`_migrate` nothing is copied — the region restarts empty on
        a live board (ring successor when sharded).  Returns
        ``(old_mn, old_va)`` on success — the caller needs them to drop
        the shadow oracle's stale cells and to reclaim the orphaned
        allocation if the board ever rejoins — or ``None`` when the
        region vanished meanwhile or no live board can take it.
        """
        lease = self._leases.get(region_id)
        if (lease is None or region_id in self._freeing
                or region_id in self._migrating):
            return None
        yield self.env.timeout(CONTROLLER_NS)
        if self._leases.get(region_id) is not lease:
            return None
        if self.shard is not None:
            target = self._pick_sharded(region_id, lease.size,
                                        exclude=lease.mn)
        else:
            target = self._pick_board(lease.size, exclude=lease.mn)
        if target is None:
            return None
        target_state = self._boards[target]
        response = yield from target_state.board.slow_path.handle_alloc(
            lease.pid, lease.size)
        if not response.ok:
            self.failed_migrations += 1
            return None
        self._note_utilization(target)
        old_mn, old_va = lease.mn, lease.va
        old_state = self._boards.get(old_mn)
        if old_state is not None:
            old_state.regions.discard(region_id)
        target_state.regions.add(region_id)
        lease.mn = target
        lease.va = response.va
        lease.generation += 1
        self.evictions += 1
        if self.shard is not None:
            self.shard.record_placement(region_id, target)
        if self.verifier is not None:
            self.verifier.on_region_evicted(lease, old_mn, old_va)
        return (old_mn, old_va)

    def _migrate(self, lease: RegionLease, target: str):
        """Process-generator: move one region; True on success.

        Returns False — leaving the lease untouched on its source —
        when the target cannot take the allocation after all (it may
        have filled between the capacity check and the alloc), when the
        region is being freed, or when the source board dies mid-copy
        (the half-written target allocation is rolled back).  While the
        copy runs the region is marked in ``_migrating`` so a concurrent
        :meth:`free` waits instead of freeing a VA that is about to
        change.
        """
        region_id = lease.region_id
        if (region_id in self._freeing or region_id in self._migrating
                or self._leases.get(region_id) is not lease):
            return False
        if target not in self._boards:
            raise KeyError(f"unknown board {target!r}")
        drain = self.env.event()
        self._migrating[region_id] = drain
        frozen = None
        fenced: list = []
        completed = False
        try:
            yield self.env.timeout(CONTROLLER_NS)
            source_state = self._boards[lease.mn]
            target_state = self._boards[target]
            response = yield from target_state.board.slow_path.handle_alloc(
                lease.pid, lease.size)
            if not response.ok:
                self.failed_migrations += 1
                return False
            self._note_utilization(target)
            if self.cache_directory is not None:
                # Recall every cached copy first: dirty lines flush to the
                # *source* board (the keys still name it), so the copy
                # loop below reads current bytes.  The region's line locks
                # stay held until the lease points at the target, blocking
                # cached traffic for the duration.
                frozen = yield from self.cache_directory.freeze_region(
                    lease.pid, lease.mn, lease.va, lease.size)
            # Write-fence the source: flip the region's PTEs to read-only
            # and shoot down their TLB entries, so writes racing the copy
            # fail typed (clients back off and retry against the new home)
            # instead of landing behind an already-copied chunk and being
            # silently lost.  Reads keep serving throughout.  The settle
            # window lets writes already past the permission check drain
            # into DRAM before the first chunk is read.
            fenced = self._fence_writes(source_state.board, lease)
            yield self.env.timeout(FENCE_SETTLE_NS)
            # Copy in page-sized chunks (only pages that were ever touched
            # carry data; untouched pages read as zero on both sides).
            from repro.core.addr import AccessType
            from repro.core.pipeline import Status
            page = source_state.board.page_spec.page_size
            offset = 0
            while offset < lease.size:
                if not source_state.board.alive:
                    # Source died mid-copy: roll the target back and
                    # leave the lease where it was — the durable page
                    # table serves it again after the restart.
                    yield from target_state.board.slow_path.handle_free(
                        lease.pid, response.va)
                    self._note_utilization(target)
                    self.aborted_migrations += 1
                    return False
                chunk = min(page, lease.size - offset)
                result = yield from source_state.board.execute_local(
                    lease.pid, AccessType.READ, lease.va + offset, chunk)
                if result.status is Status.OK and any(result.data):
                    yield from target_state.board.execute_local(
                        lease.pid, AccessType.WRITE, response.va + offset,
                        chunk, data=result.data)
                offset += chunk
            yield from source_state.board.slow_path.handle_free(
                lease.pid, lease.va)
            self._note_utilization(lease.mn)
            source_state.regions.discard(region_id)
            target_state.regions.add(region_id)
            old_mn, old_va = lease.mn, lease.va
            lease.mn = target
            lease.va = response.va
            lease.generation += 1
            self.migrations += 1
            if self.shard is not None:
                self.shard.record_placement(region_id, target)
            if self.verifier is not None:
                self.verifier.on_region_migrated(lease, old_mn, old_va)
            completed = True
            return True
        finally:
            if fenced and not completed:
                # Aborted after fencing: the region stays on its source,
                # so writes must work again (once the board is back).
                self._unfence_writes(source_state.board, fenced)
            if frozen is not None:
                self.cache_directory.release_region(frozen)
            del self._migrating[region_id]
            if not drain.triggered:
                drain.succeed()

    def _fence_writes(self, board: CBoard, lease: RegionLease) -> list:
        """Make a region read-only on its board; returns undo state.

        Mutates the PTEs in place and invalidates their TLB entries —
        the MMU-level equivalent of a write-protect shootdown.
        """
        from repro.core.addr import Permission
        fenced = []
        for vpn in board.page_spec.pages_spanned(lease.va, lease.size):
            entry = board.page_table.lookup(lease.pid, vpn)
            if entry is None or Permission.WRITE not in entry.permission:
                continue
            fenced.append((entry, entry.permission))
            entry.permission = Permission.READ
            board.tlb.invalidate(lease.pid, vpn)
        return fenced

    @staticmethod
    def _unfence_writes(board: CBoard, fenced: list) -> None:
        """Undo a write fence: restore permissions AND shoot down the
        TLB again — reads during the fence window re-cached the entries
        with their fenced (read-only) permission."""
        for entry, permission in fenced:
            entry.permission = permission
            board.tlb.invalidate(entry.pid, entry.vpn)

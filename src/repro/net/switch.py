"""ToR switch and cluster topology.

The switch has one downlink per attached node; an arriving packet pays the
forwarding latency, then queues on its destination's downlink.  Incast to
the MN therefore shows up as queueing delay on the MN's downlink — which
is precisely the RTT inflation CLib's congestion window reacts to.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Optional

from repro.net.link import Link
from repro.net.packet import Packet
from repro.sim import Environment
from repro.sim.rng import RandomStream
from repro.params import NetworkParams
from repro.telemetry.metrics import MetricsRegistry, StatsView

Deliver = Callable[[Packet], None]


class Switch:
    """Output-queued ToR switch."""

    def __init__(self, env: Environment, forward_ns: int,
                 registry: Optional[MetricsRegistry] = None,
                 scope: str = "switch.tor"):
        self.env = env
        self.forward_ns = forward_ns
        self._downlinks: dict[str, Link] = {}
        # Per-egress shapers (repro.net.qos), installed by enable_qos;
        # empty on a QoS-off cluster, where _forward never consults one.
        self._shapers: dict[str, object] = {}
        self.packets_forwarded = 0
        self.unroutable = 0
        self.metrics = (registry if registry is not None
                        else MetricsRegistry()).scope(scope)
        self._stats = StatsView({
            "packets_forwarded": self.metrics.counter(
                "packets_forwarded", fn=lambda: self.packets_forwarded),
            "unroutable": self.metrics.counter(
                "unroutable", fn=lambda: self.unroutable),
        })

    def stats(self) -> dict:
        return self._stats.snapshot()

    def attach(self, node: str, downlink: Link) -> None:
        if node in self._downlinks:
            raise ValueError(f"node {node!r} already attached")
        self._downlinks[node] = downlink
        # Per-egress-queue depth, under the switch's own scope (the link
        # has a gauge too, but only the switch can add shaper backlog —
        # and `repro metrics` readers want all egress queues in one
        # place, keyed by the attached node).
        self.metrics.gauge(f"queue.{node}.depth",
                           "packets queued at this egress (link + shaper)",
                           fn=lambda n=node: self.egress_queue_depth(n))

    def install_shaper(self, node: str, shaper) -> None:
        """Route ``node``'s egress through a per-tenant shaper."""
        if node not in self._downlinks:
            raise KeyError(f"node {node!r} not attached")
        self._shapers[node] = shaper

    def remove_shaper(self, node: str) -> None:
        self._shapers.pop(node, None)

    def shaper_for(self, node: str):
        return self._shapers.get(node)

    def ingress(self, packet: Packet) -> None:
        """Receive a packet from any uplink and forward it."""
        self.env.schedule_callback(self.forward_ns,
                                   partial(self._forward, packet))

    def _forward(self, packet: Packet) -> None:
        downlink = self._downlinks.get(packet.header.dst)
        if downlink is None:
            self.unroutable += 1
            return
        self.packets_forwarded += 1
        if self._shapers:
            shaper = self._shapers.get(packet.header.dst)
            if shaper is not None:
                shaper.send(packet)
                return
        downlink.send(packet)

    def downlink_queue_depth(self, node: str) -> int:
        return self._downlinks[node].queue_depth

    def egress_queue_depth(self, node: str) -> int:
        """Link serializer queue plus any shaper backlog for ``node``."""
        depth = self._downlinks[node].queue_depth
        shaper = self._shapers.get(node)
        if shaper is not None:
            depth += shaper.backlog
        return depth


class Topology:
    """A star topology: every node hangs off one ToR switch.

    Nodes register a name, a receive callback, and a port rate; the
    topology builds the uplink (node -> switch) and downlink (switch ->
    node) pair and exposes ``send`` for node-to-node packet transfer.
    """

    def __init__(self, env: Environment, params: NetworkParams,
                 rng: Optional[RandomStream] = None,
                 registry: Optional[MetricsRegistry] = None):
        self.env = env
        self.params = params
        self.rng = rng or RandomStream(0, "net")
        self.registry = registry if registry is not None else MetricsRegistry()
        self.switch = Switch(env, params.switch_forward_ns,
                             registry=self.registry)
        self._uplinks: dict[str, Link] = {}
        self._receivers: dict[str, Deliver] = {}

    def add_node(self, name: str, receive: Deliver,
                 port_rate_bps: Optional[int] = None,
                 node_env: Optional[Environment] = None) -> None:
        """Attach a node; ``port_rate_bps`` defaults to the CN NIC rate.

        ``node_env`` is the node's own environment.  Under the partitioned
        engine it is the node's :class:`~repro.sim.Partition`: the uplink's
        serializer then lives with the node while its delivery fires on the
        switch tier's wheel (and vice versa for the downlink), and the link
        propagation delay is declared as the conservative lookahead edge
        between the two logical processes.  In a flat environment this
        changes nothing.
        """
        if name in self._uplinks:
            raise ValueError(f"node {name!r} already exists")
        rate = port_rate_bps or self.params.cn_nic_rate_bps
        if node_env is None:
            node_env = self.env
        self._receivers[name] = receive
        self._uplinks[name] = Link(
            node_env, f"{name}->tor", rate, self.params.propagation_ns,
            deliver=self.switch.ingress, rng=self.rng.fork(f"up/{name}"),
            loss_rate=self.params.loss_rate,
            corruption_rate=self.params.corruption_rate,
            jitter_ns=self.params.jitter_ns, registry=self.registry,
            deliver_env=self.env)
        downlink = Link(
            self.env, f"tor->{name}", rate, self.params.propagation_ns,
            deliver=lambda packet, _name=name: self._receivers[_name](packet),
            rng=self.rng.fork(f"down/{name}"),
            loss_rate=self.params.loss_rate,
            corruption_rate=self.params.corruption_rate,
            jitter_ns=self.params.jitter_ns, registry=self.registry,
            deliver_env=node_env)
        self.switch.attach(name, downlink)
        self._declare_lookahead(node_env)

    def _declare_lookahead(self, node_env: Environment) -> None:
        """Register link propagation as the node<->switch lookahead edge.

        A no-op unless both ends are partitions of the same
        :class:`~repro.sim.PartitionedEnvironment`.  The edge is the
        propagation delay plus the minimum one-byte serialization time —
        nothing a sender does *now* can reach the other side sooner.
        """
        if node_env is self.env:
            return
        parent = getattr(self.env, "parent", None)
        if parent is None or getattr(node_env, "parent", None) is not parent:
            return
        lookahead = self.params.propagation_ns + 1
        parent.declare_lookahead(node_env, self.env, lookahead)
        parent.declare_lookahead(self.env, node_env, lookahead)

    def send(self, packet: Packet) -> None:
        """Inject a packet at its source node's uplink."""
        uplink = self._uplinks.get(packet.header.src)
        if uplink is None:
            raise KeyError(f"unknown source node {packet.header.src!r}")
        uplink.send(packet)

    def node_names(self) -> list[str]:
        return sorted(self._uplinks)

    def uplink(self, name: str) -> Link:
        return self._uplinks[name]

    def downlink(self, name: str) -> Link:
        return self.switch._downlinks[name]

    def links_for(self, name: str) -> tuple[Link, Link]:
        """(uplink, downlink) pair of a node, for fault injection."""
        return self.uplink(name), self.downlink(name)

    def all_links(self) -> list[Link]:
        """Every link in the topology (uplinks then downlinks, by name)."""
        links = [self._uplinks[n] for n in sorted(self._uplinks)]
        links += [self.switch._downlinks[n]
                  for n in sorted(self.switch._downlinks)]
        return links

    def set_tracer(self, tracer) -> None:
        """Enable (or with ``None``, disable) span tracing on every link."""
        for link in self.all_links():
            link.tracer = tracer

    def set_node_up(self, name: str, up: bool) -> None:
        """Cut or restore both directions of a node's cable."""
        for link in self.links_for(name):
            if up:
                link.set_up()
            else:
                link.set_down()

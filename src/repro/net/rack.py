"""Multi-switch rack fabric: ToR switches under a spine.

The single-switch :class:`~repro.net.switch.Topology` stops scaling
around a dozen boards — every packet in the rack serializes through one
forwarding loop, and under the partitioned engine the whole fabric is
one logical process.  The rack topology splits the fabric the way a real
rack does:

* each node (CN, CBoard, cache directory) hangs off one of ``tors`` ToR
  switches, chosen round-robin from the trailing digits of its name;
* ToRs connect to a single spine switch over dedicated links, so a
  cross-ToR packet takes node -> ToR -> spine -> ToR -> node and pays
  three forwarding delays instead of one;
* same-ToR traffic turns around at the ToR and never touches the spine;
* incast concentrates on the destination's ToR downlink — per-ToR incast
  queues, not one shared queue for the rack.

Under the partitioned engine every ToR and the spine can own its own
logical process; the link propagation delay on every node<->ToR *and*
ToR<->spine edge is declared as conservative PDES lookahead, which is
what lets a 64-board run actually parallelize instead of degenerating to
lockstep around a single switch LP.

The class mirrors the :class:`Topology` surface (``add_node``, ``send``,
``links_for``, ``set_node_up``, ...) so clusters, fault injectors, and
tracers work against either interchangeably.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.net.link import Link
from repro.net.packet import Packet
from repro.net.switch import Deliver, Switch
from repro.sim import Environment
from repro.sim.rng import RandomStream
from repro.params import NetworkParams
from repro.telemetry.metrics import MetricsRegistry

_TRAILING_DIGITS = re.compile(r"(\d+)$")


class RackSwitch(Switch):
    """ToR switch with a default route up to the spine.

    A destination without a local downlink is not unroutable here — it
    lives under another ToR, so the packet goes up the spine uplink.
    """

    def __init__(self, env: Environment, forward_ns: int,
                 registry: Optional[MetricsRegistry] = None,
                 scope: str = "rack.tor"):
        super().__init__(env, forward_ns, registry=registry, scope=scope)
        self.spine_uplink: Optional[Link] = None

    def _forward(self, packet: Packet) -> None:
        downlink = self._downlinks.get(packet.header.dst)
        if downlink is None:
            if self.spine_uplink is None:
                self.unroutable += 1
                return
            self.packets_forwarded += 1
            self.spine_uplink.send(packet)
            return
        self.packets_forwarded += 1
        if self._shapers:
            shaper = self._shapers.get(packet.header.dst)
            if shaper is not None:
                shaper.send(packet)
                return
        downlink.send(packet)


class SpineSwitch(Switch):
    """Spine: routes each destination down the link to its ToR."""

    def __init__(self, env: Environment, forward_ns: int,
                 registry: Optional[MetricsRegistry] = None,
                 scope: str = "rack.spine"):
        super().__init__(env, forward_ns, registry=registry, scope=scope)
        self._routes: dict[str, Link] = {}   # dst node -> spine->ToR link

    def add_route(self, node: str, link: Link) -> None:
        if node in self._routes:
            raise ValueError(f"route for {node!r} already exists")
        self._routes[node] = link

    def _forward(self, packet: Packet) -> None:
        link = self._routes.get(packet.header.dst)
        if link is None:
            self.unroutable += 1
            return
        self.packets_forwarded += 1
        link.send(packet)


class RackTopology:
    """ToR + spine fabric with the single-switch ``Topology`` surface.

    ``tor_envs``/``spine_env`` place each switch tier on its own
    environment (under the partitioned engine, its own partition); they
    default to ``env`` so a flat run needs no extra wiring.  Inter-switch
    links are built eagerly at construction, node links as nodes attach.
    """

    def __init__(self, env: Environment, params: NetworkParams,
                 tors: int = 2,
                 rng: Optional[RandomStream] = None,
                 registry: Optional[MetricsRegistry] = None,
                 tor_envs: Optional[list[Environment]] = None,
                 spine_env: Optional[Environment] = None,
                 spine_rate_bps: Optional[int] = None,
                 spine_forward_ns: Optional[int] = None):
        if tors < 1:
            raise ValueError(f"need at least one ToR, got {tors}")
        if tor_envs is not None and len(tor_envs) != tors:
            raise ValueError(
                f"tor_envs has {len(tor_envs)} entries for {tors} ToRs")
        self.env = env
        self.params = params
        self.tors = tors
        self.rng = rng or RandomStream(0, "rack")
        self.registry = registry if registry is not None else MetricsRegistry()
        self._tor_envs = tor_envs or [env] * tors
        self._spine_env = spine_env if spine_env is not None else env
        spine_forward = (spine_forward_ns if spine_forward_ns is not None
                         else params.switch_forward_ns)
        spine_rate = (spine_rate_bps if spine_rate_bps is not None
                      else params.switch_rate_bps)
        self.spine = SpineSwitch(self._spine_env, spine_forward,
                                 registry=self.registry)
        self.tor_switches: list[RackSwitch] = []
        self._spine_downlinks: list[Link] = []   # spine -> ToR i
        for i in range(tors):
            tor_env = self._tor_envs[i]
            tor = RackSwitch(tor_env, params.switch_forward_ns,
                             registry=self.registry, scope=f"rack.tor{i}")
            tor.spine_uplink = Link(
                tor_env, f"tor{i}->spine", spine_rate,
                params.propagation_ns, deliver=self.spine.ingress,
                rng=self.rng.fork(f"up/tor{i}"),
                loss_rate=params.loss_rate,
                corruption_rate=params.corruption_rate,
                jitter_ns=params.jitter_ns, registry=self.registry,
                deliver_env=self._spine_env)
            down = Link(
                self._spine_env, f"spine->tor{i}", spine_rate,
                params.propagation_ns, deliver=tor.ingress,
                rng=self.rng.fork(f"down/tor{i}"),
                loss_rate=params.loss_rate,
                corruption_rate=params.corruption_rate,
                jitter_ns=params.jitter_ns, registry=self.registry,
                deliver_env=tor_env)
            self.tor_switches.append(tor)
            self._spine_downlinks.append(down)
            self._declare_lookahead(tor_env, self._spine_env)
        self._uplinks: dict[str, Link] = {}
        self._downlinks: dict[str, Link] = {}
        self._receivers: dict[str, Deliver] = {}
        self._node_tor: dict[str, int] = {}

    # -- placement of nodes onto ToRs ----------------------------------------------

    def tor_index(self, name: str) -> int:
        """ToR hosting ``name``: trailing digits round-robin, else ToR 0.

        ``mn0 mn1 mn2 ...`` and ``cn0 cn1 ...`` interleave across ToRs;
        digitless names (the cache directory) land on ToR 0.
        """
        match = _TRAILING_DIGITS.search(name)
        if match is None:
            return 0
        return int(match.group(1)) % self.tors

    def add_node(self, name: str, receive: Deliver,
                 port_rate_bps: Optional[int] = None,
                 node_env: Optional[Environment] = None) -> None:
        """Attach a node to its ToR (same contract as ``Topology``)."""
        if name in self._uplinks:
            raise ValueError(f"node {name!r} already exists")
        rate = port_rate_bps or self.params.cn_nic_rate_bps
        if node_env is None:
            node_env = self.env
        index = self.tor_index(name)
        tor = self.tor_switches[index]
        tor_env = self._tor_envs[index]
        self._receivers[name] = receive
        self._node_tor[name] = index
        self._uplinks[name] = Link(
            node_env, f"{name}->tor{index}", rate,
            self.params.propagation_ns, deliver=tor.ingress,
            rng=self.rng.fork(f"up/{name}"),
            loss_rate=self.params.loss_rate,
            corruption_rate=self.params.corruption_rate,
            jitter_ns=self.params.jitter_ns, registry=self.registry,
            deliver_env=tor_env)
        downlink = Link(
            tor_env, f"tor{index}->{name}", rate,
            self.params.propagation_ns,
            deliver=lambda packet, _name=name: self._receivers[_name](packet),
            rng=self.rng.fork(f"down/{name}"),
            loss_rate=self.params.loss_rate,
            corruption_rate=self.params.corruption_rate,
            jitter_ns=self.params.jitter_ns, registry=self.registry,
            deliver_env=node_env)
        self._downlinks[name] = downlink
        tor.attach(name, downlink)
        self.spine.add_route(name, self._spine_downlinks[index])
        self._declare_lookahead(node_env, tor_env)

    def _declare_lookahead(self, a: Environment, b: Environment) -> None:
        """Link propagation as the conservative edge between two LPs.

        A no-op unless both ends are partitions of the same parent (same
        rule as ``Topology._declare_lookahead``); the edge is propagation
        plus the minimum one-byte serialization time, declared both ways.
        """
        if a is b:
            return
        parent = getattr(a, "parent", None)
        if parent is None or getattr(b, "parent", None) is not parent:
            return
        lookahead = self.params.propagation_ns + 1
        parent.declare_lookahead(a, b, lookahead)
        parent.declare_lookahead(b, a, lookahead)

    # -- Topology-compatible surface -------------------------------------------------

    def send(self, packet: Packet) -> None:
        """Inject a packet at its source node's uplink."""
        uplink = self._uplinks.get(packet.header.src)
        if uplink is None:
            raise KeyError(f"unknown source node {packet.header.src!r}")
        uplink.send(packet)

    def node_names(self) -> list[str]:
        return sorted(self._uplinks)

    def uplink(self, name: str) -> Link:
        return self._uplinks[name]

    def downlink(self, name: str) -> Link:
        return self._downlinks[name]

    def links_for(self, name: str) -> tuple[Link, Link]:
        """(uplink, downlink) pair of a node, for fault injection."""
        return self.uplink(name), self.downlink(name)

    def fabric_links(self) -> list[Link]:
        """ToR<->spine links, ToR order, up before down."""
        links = []
        for i, tor in enumerate(self.tor_switches):
            links.append(tor.spine_uplink)
            links.append(self._spine_downlinks[i])
        return links

    def all_links(self) -> list[Link]:
        """Every link (node uplinks, node downlinks, then fabric)."""
        links = [self._uplinks[n] for n in sorted(self._uplinks)]
        links += [self._downlinks[n] for n in sorted(self._downlinks)]
        links += self.fabric_links()
        return links

    def set_tracer(self, tracer) -> None:
        """Enable (or with ``None``, disable) span tracing on every link."""
        for link in self.all_links():
            link.tracer = tracer

    def set_node_up(self, name: str, up: bool) -> None:
        """Cut or restore both directions of a node's cable."""
        for link in self.links_for(name):
            if up:
                link.set_up()
            else:
                link.set_down()

    def stats(self) -> dict:
        """Forwarding counters for each tier (diagnostics)."""
        return {
            "spine": self.spine.stats(),
            "tors": [tor.stats() for tor in self.tor_switches],
        }

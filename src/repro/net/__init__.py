"""Ethernet fabric model: packets, links, and the ToR switch.

The model is deliberately simple — serialization + propagation +
output-queueing per link, with seeded loss/corruption injection — because
that is exactly the behaviour Clio's CN-side transport must cope with
(section 4.4): no ordering, no reliability, congestion visible as RTT
inflation, incast visible as switch-queue growth.
"""

from repro.net.gbn import GBNReceiver, GBNSender, connection_state_bytes
from repro.net.link import Link
from repro.net.packet import ClioHeader, Packet, PacketType, fragment_payload
from repro.net.rack import RackSwitch, RackTopology, SpineSwitch
from repro.net.switch import Switch, Topology

__all__ = [
    "ClioHeader",
    "GBNReceiver",
    "GBNSender",
    "Link",
    "Packet",
    "PacketType",
    "RackSwitch",
    "RackTopology",
    "SpineSwitch",
    "Switch",
    "Topology",
    "connection_state_bytes",
    "fragment_payload",
]

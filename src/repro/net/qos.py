"""Per-tenant egress shaping at the switch (token bucket / GCRA).

Multi-tenant pooling shares the MN's downlink — the 10 Gbps port that
incast congests.  Without shaping, one tenant's burst parks behind the
FIFO serializer in :class:`repro.net.link.Link` and every other tenant's
RTT inflates with it (the congestion signal CLib reacts to — but a
*victim* tenant's CLib cannot un-inflate a queue someone else built).

The :class:`EgressShaper` sits between the switch's forwarding decision
and the egress link.  Each tenant gets a GCRA (virtual-scheduling token
bucket): a packet whose tenant is within its reserved rate — ``share``
of the port, with ``burst_bytes`` of slack — forwards to the link
immediately; a non-conforming packet waits in the tenant's FIFO until
its theoretical arrival time.  Shares are reservations with a hard
ceiling (non-work-conserving): an aggressor above its share queues *in
its own FIFO*, not on the port, so the victim's packets reach an almost
idle serializer.  That is the isolation bar the noisy-neighbor scenario
pins: victim p99 inflation ≤ 1.5x with shaping on, unbounded off.

Packets from nodes that belong to no tenant bypass the shaper entirely.

Determinism: pure integer arithmetic, no RNG; release callbacks are
scheduled on the switch tier's environment, exactly where unshapped
forwarding already runs, so flat and partitioned engines stay
bit-identical and a QoS-off cluster schedules zero extra events.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.net.link import Link
from repro.net.packet import Packet
from repro.params import SEC, QoSParams
from repro.sim import Environment
from repro.telemetry.metrics import MetricsRegistry


class _TenantQueue:
    """GCRA state + backlog FIFO for one tenant at one egress port."""

    __slots__ = ("name", "ns_per_byte_num", "rate_bps", "tau_ns", "tat",
                 "fifo", "release_pending", "passed", "shaped",
                 "shaped_delay_ns", "bytes_sent")

    def __init__(self, name: str, rate_bps: int, burst_bytes: int):
        self.name = name
        self.rate_bps = rate_bps
        # Burst allowance in time units at the reserved rate.
        self.tau_ns = (burst_bytes * 8 * SEC) // rate_bps
        self.tat = 0                      # theoretical arrival time
        self.fifo: deque = deque()        # (packet, enqueued_at)
        self.release_pending = False
        self.passed = 0
        self.shaped = 0
        self.shaped_delay_ns = 0
        self.bytes_sent = 0

    def emission_ns(self, wire_bytes: int) -> int:
        return max(1, (wire_bytes * 8 * SEC) // self.rate_bps)


class EgressShaper:
    """Token-bucket shaping in front of one egress link."""

    def __init__(self, env: Environment, node: str, downlink: Link,
                 qos: QoSParams, port_rate_bps: int,
                 registry: Optional[MetricsRegistry] = None,
                 scope: str = "qos"):
        self.env = env
        self.node = node
        self.downlink = downlink
        self.qos = qos
        self.port_rate_bps = port_rate_bps
        self._queues: dict[str, _TenantQueue] = {}
        self._by_client: dict[str, _TenantQueue] = {}
        for tenant in qos.tenants:
            rate = max(1, int(port_rate_bps * tenant.share))
            queue = _TenantQueue(tenant.name, rate, qos.burst_bytes)
            self._queues[tenant.name] = queue
            for client in tenant.clients:
                self._by_client[client] = queue
        self.unclassified = 0
        if registry is not None:
            self._register_metrics(registry, scope)

    # -- telemetry --------------------------------------------------------------------

    def _register_metrics(self, registry: MetricsRegistry,
                          scope: str) -> None:
        egress = registry.scope(f"{scope}.{self.node}")
        egress.counter("unclassified", "packets from nodes in no tenant",
                       fn=lambda: self.unclassified)
        egress.gauge("backlog", "packets held across all tenant FIFOs",
                     fn=lambda: sum(len(q.fifo)
                                    for q in self._queues.values()))
        for name, queue in self._queues.items():
            tenant_scope = registry.scope(f"{scope}.{self.node}"
                                          f".tenant.{name}")
            tenant_scope.counter("passed", "packets forwarded within rate",
                                 fn=lambda q=queue: q.passed)
            tenant_scope.counter("shaped", "packets delayed by the bucket",
                                 fn=lambda q=queue: q.shaped)
            tenant_scope.counter("shaped_delay_ns",
                                 "total time packets sat in the FIFO",
                                 unit="ns",
                                 fn=lambda q=queue: q.shaped_delay_ns)
            tenant_scope.counter("bytes_sent",
                                 "wire bytes released to the link",
                                 unit="bytes",
                                 fn=lambda q=queue: q.bytes_sent)
            tenant_scope.gauge("queue_depth", "packets waiting in the FIFO",
                               fn=lambda q=queue: len(q.fifo))

    def stats(self) -> dict:
        return {
            "unclassified": self.unclassified,
            "tenants": {
                name: {
                    "passed": queue.passed,
                    "shaped": queue.shaped,
                    "shaped_delay_ns": queue.shaped_delay_ns,
                    "queue_depth": len(queue.fifo),
                }
                for name, queue in self._queues.items()
            },
        }

    @property
    def backlog(self) -> int:
        """Packets currently held back across all tenant FIFOs."""
        return sum(len(queue.fifo) for queue in self._queues.values())

    # -- data path --------------------------------------------------------------------

    def send(self, packet: Packet) -> None:
        """Admit one forwarded packet; forward now or hold to conformance."""
        queue = self._by_client.get(packet.header.src)
        if queue is None:
            self.unclassified += 1
            self.downlink.send(packet)
            return
        now = self.env.now
        if not queue.fifo and queue.tat <= now + queue.tau_ns:
            # Conforming: spend burst credit and forward immediately.
            queue.tat = max(now, queue.tat) + queue.emission_ns(
                packet.wire_bytes)
            queue.passed += 1
            queue.bytes_sent += packet.wire_bytes
            self.downlink.send(packet)
            return
        queue.shaped += 1
        queue.fifo.append((packet, now))
        self._arm_release(queue)

    def _arm_release(self, queue: _TenantQueue) -> None:
        if queue.release_pending or not queue.fifo:
            return
        queue.release_pending = True
        delay = max(0, queue.tat - queue.tau_ns - self.env.now)
        self.env.schedule_callback(delay, lambda q=queue: self._release(q))

    def _release(self, queue: _TenantQueue) -> None:
        queue.release_pending = False
        if not queue.fifo:
            return
        packet, enqueued_at = queue.fifo.popleft()
        now = self.env.now
        queue.shaped_delay_ns += now - enqueued_at
        queue.tat = max(now, queue.tat) + queue.emission_ns(
            packet.wire_bytes)
        queue.bytes_sent += packet.wire_bytes
        self.downlink.send(packet)
        self._arm_release(queue)

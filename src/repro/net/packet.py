"""Link-layer packets and the Clio header.

Every packet is self-describing (sender/receiver addresses, request ID,
request type, fragment geometry) so the MN can treat each packet
independently and execute it on arrival, in any order (Principle 5).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional


class PacketType(enum.Enum):
    """Clio header request/response types (the MAT dispatches on these)."""

    READ = "read"            # fast path
    WRITE = "write"          # fast path
    ATOMIC = "atomic"        # fast path (synchronization unit)
    FENCE = "fence"          # fast path barrier
    BATCH = "batch"          # fast path multi-op frame (scatter/gather)
    ALLOC = "alloc"          # slow path
    FREE = "free"            # slow path
    OFFLOAD = "offload"      # extend path
    CACHE_REQ = "cache_req"  # CN -> cache directory (fill/wbegin/wend/sync)
    CACHE_INVAL = "cache_inval"  # cache directory -> CN (recall/downgrade)
    RESPONSE = "response"
    NACK = "nack"            # corruption detected at MN


#: Fast-path types the MAT keeps in the ASIC pipeline.
FAST_PATH_TYPES = frozenset(
    {PacketType.READ, PacketType.WRITE, PacketType.ATOMIC, PacketType.FENCE,
     PacketType.BATCH})

_packet_ids = itertools.count(1)


@dataclass(frozen=True, slots=True)
class ClioHeader:
    """Per-packet header: everything needed to process the packet alone."""

    src: str                      # sender node name
    dst: str                      # receiver node name
    request_id: int               # unique per request *and* per retry
    packet_type: PacketType
    pid: int = 0                  # global process ID (RAS selector)
    va: int = 0                   # target virtual address of this fragment
    size: int = 0                 # payload bytes covered by this fragment
    total_size: int = 0           # bytes of the whole request/response
    fragment: int = 0             # fragment index within the request
    fragments: int = 1            # total fragments of the request
    retry_of: Optional[int] = None  # request ID of the failed original


@dataclass(frozen=True, slots=True)
class BatchSubOp:
    """One operation inside a multi-op BATCH frame.

    The frame header carries the shared fields (PID, request ID); each
    sub-op contributes only its own descriptor — ``op`` (READ or WRITE),
    the target VA, the size, and the write payload.  On the wire a
    descriptor costs ``NetworkParams.subop_header_bytes`` instead of a
    full per-request header.
    """

    op: PacketType
    va: int
    size: int
    data: Optional[bytes] = None

    def __post_init__(self) -> None:
        if self.op not in (PacketType.READ, PacketType.WRITE):
            raise ValueError(f"batch sub-ops are READ/WRITE, got {self.op}")
        if self.size <= 0:
            raise ValueError(f"sub-op size must be positive, got {self.size}")
        if self.op is PacketType.WRITE:
            if self.data is None or len(self.data) != self.size:
                raise ValueError("write sub-op needs data matching size")
        elif self.data is not None:
            raise ValueError("read sub-op carries no data")


@dataclass(slots=True)
class Packet:
    """A link-layer packet: header + (simulated) payload."""

    header: ClioHeader
    payload: Any = None           # bytes for data fragments, or op descriptor
    wire_bytes: int = 0           # total on-wire size incl. headers
    corrupt: bool = False
    uid: int = field(default_factory=lambda: next(_packet_ids))
    sent_at: int = 0              # set by the sender for RTT measurement

    def __repr__(self) -> str:
        h = self.header
        return (f"<Packet {h.packet_type.value} req={h.request_id} "
                f"{h.src}->{h.dst} frag={h.fragment}/{h.fragments} "
                f"{self.wire_bytes}B>")


def fragment_payload(total_size: int, mtu: int) -> list[tuple[int, int]]:
    """Split a request body into (offset, size) fragments of at most MTU.

    Zero-byte requests (pure control, e.g. fence) still occupy one
    header-only fragment.
    """
    if total_size < 0:
        raise ValueError(f"total_size must be non-negative, got {total_size}")
    if mtu <= 0:
        raise ValueError(f"mtu must be positive, got {mtu}")
    if total_size == 0:
        return [(0, 0)]
    fragments = []
    offset = 0
    while offset < total_size:
        size = min(mtu, total_size - offset)
        fragments.append((offset, size))
        offset += size
    return fragments

"""Go-Back-N: the conventional reliable transport Clio argues against.

Figure 19 lists a Go-Back-N block among the Clio-built FPGA components —
the authors implemented the traditional design to compare against.  This
module reproduces it as a connection-oriented, sequence-numbered,
cumulative-ack transport:

* the **sender** keeps a window of unacknowledged packets and retransmits
  the whole window on timeout (go back N);
* the **receiver** accepts only in-order sequence numbers and acks
  cumulatively.

Its purpose here is the paper's Challenge 2 argument: every connection
costs both endpoints buffers and sequence state that grow with the
connection count, which is exactly what the transportless MN design
eliminates.  :func:`connection_state_bytes` quantifies that footprint for
the on-chip state benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.sim import Environment, Event

#: Per-packet bookkeeping a hardware GBN keeps in the retransmit buffer.
PACKET_SLOT_BYTES = 64 + 1500      # descriptor + payload staging
#: Fixed per-connection registers (sequence numbers, timers, peer).
CONNECTION_FIXED_BYTES = 64


def connection_state_bytes(window: int) -> int:
    """On-chip bytes ONE endpoint holds per GBN connection."""
    return CONNECTION_FIXED_BYTES + window * PACKET_SLOT_BYTES


@dataclass
class _Unacked:
    seq: int
    payload: bytes
    sent_at: int


class GBNSender:
    """Sender half of one connection."""

    def __init__(self, env: Environment, window: int, timeout_ns: int,
                 transmit: Callable[[int, bytes], None]):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if timeout_ns <= 0:
            raise ValueError(f"timeout must be positive, got {timeout_ns}")
        self.env = env
        self.window = window
        self.timeout_ns = timeout_ns
        self.transmit = transmit
        self.next_seq = 0
        self.base = 0
        self._unacked: list[_Unacked] = []
        self._window_open: Optional[Event] = None
        self._timer: Optional[Event] = None
        self.retransmissions = 0
        self.delivered = 0

    @property
    def in_flight(self) -> int:
        return len(self._unacked)

    def state_bytes(self) -> int:
        return connection_state_bytes(self.window)

    # -- sending -------------------------------------------------------------------

    def send(self, payload: bytes):
        """Process-generator: block until the window admits, then send."""
        while len(self._unacked) >= self.window:
            if self._window_open is None or self._window_open.triggered:
                self._window_open = self.env.event()
            yield self._window_open
        packet = _Unacked(seq=self.next_seq, payload=payload,
                          sent_at=self.env.now)
        self._unacked.append(packet)
        self.next_seq += 1
        self.transmit(packet.seq, payload)
        if self._timer is None:
            self._arm_timer()

    def _arm_timer(self) -> None:
        timer = self.env.timeout(self.timeout_ns)
        self._timer = timer
        timer.callbacks.append(self._on_timer)

    def _on_timer(self, event) -> None:
        if event is not self._timer:
            return   # superseded by an ack re-arming
        self._timer = None
        if not self._unacked:
            return
        # Go back N: retransmit the entire outstanding window.
        for packet in self._unacked:
            self.retransmissions += 1
            self.transmit(packet.seq, packet.payload)
        self._arm_timer()

    # -- feedback -------------------------------------------------------------------

    def on_ack(self, cumulative_seq: int) -> None:
        """Receiver acked everything below ``cumulative_seq``."""
        before = len(self._unacked)
        self._unacked = [packet for packet in self._unacked
                         if packet.seq >= cumulative_seq]
        acked = before - len(self._unacked)
        if acked > 0:
            self.delivered += acked
            self.base = cumulative_seq
            if self._window_open is not None and not self._window_open.triggered:
                self._window_open.succeed()
            self._timer = None          # cancel logically
            if self._unacked:
                self._arm_timer()


class GBNReceiver:
    """Receiver half: in-order delivery plus cumulative acks."""

    def __init__(self, deliver: Callable[[bytes], None],
                 send_ack: Callable[[int], None], window: int = 1):
        self.deliver = deliver
        self.send_ack = send_ack
        self.window = window
        self.expected_seq = 0
        self.accepted = 0
        self.discarded = 0

    def state_bytes(self) -> int:
        # A pure GBN receiver buffers nothing, but it still keeps the
        # per-connection expected-sequence register set.
        return CONNECTION_FIXED_BYTES

    def on_packet(self, seq: int, payload: bytes) -> None:
        if seq == self.expected_seq:
            self.expected_seq += 1
            self.accepted += 1
            self.deliver(payload)
        else:
            # Out-of-order (ahead) or duplicate: discard, re-ack.
            self.discarded += 1
        self.send_ack(self.expected_seq)

"""Point-to-point link: serialization, propagation, loss, and corruption.

A link serializes packets one at a time at its configured rate (so an
overloaded link builds queueing delay — the congestion signal CLib's
delay-based AIMD reacts to) and delivers each after a propagation delay
plus bounded jitter.  Loss and corruption are Bernoulli per packet from a
dedicated seeded stream.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.packet import Packet
from repro.params import SEC
from repro.sim import Environment, Store
from repro.sim.rng import RandomStream

Deliver = Callable[[Packet], None]


class Link:
    """Unidirectional link with a FIFO transmit queue."""

    def __init__(self, env: Environment, name: str, rate_bps: int,
                 propagation_ns: int, deliver: Deliver,
                 rng: Optional[RandomStream] = None,
                 loss_rate: float = 0.0, corruption_rate: float = 0.0,
                 jitter_ns: int = 0):
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        if propagation_ns < 0:
            raise ValueError(f"propagation must be non-negative, got {propagation_ns}")
        self.env = env
        self.name = name
        self.rate_bps = rate_bps
        self.propagation_ns = propagation_ns
        self.deliver = deliver
        self.rng = rng or RandomStream(0, f"link/{name}")
        self.loss_rate = loss_rate
        self.corruption_rate = corruption_rate
        self.jitter_ns = jitter_ns
        self._queue = Store(env)
        self.packets_sent = 0
        self.packets_dropped = 0
        self.packets_corrupted = 0
        self.bytes_sent = 0
        env.process(self._pump())

    def send(self, packet: Packet) -> None:
        """Enqueue a packet for transmission (non-blocking)."""
        self._queue.items.append(packet)
        self._queue._trigger()

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def transmit_ns(self, wire_bytes: int) -> int:
        return max(1, (wire_bytes * 8 * SEC) // self.rate_bps)

    def _pump(self):
        while True:
            packet = yield self._queue.get()
            yield self.env.timeout(self.transmit_ns(packet.wire_bytes))
            self.packets_sent += 1
            self.bytes_sent += packet.wire_bytes
            if self.rng.chance(self.loss_rate):
                self.packets_dropped += 1
                continue
            if self.rng.chance(self.corruption_rate):
                self.packets_corrupted += 1
                packet.corrupt = True
            delay = self.propagation_ns
            if self.jitter_ns:
                delay += self.rng.uniform_int(0, self.jitter_ns)
            self.env.process(self._deliver_after(packet, delay))

    def _deliver_after(self, packet: Packet, delay: int):
        yield self.env.timeout(delay)
        self.deliver(packet)

"""Point-to-point link: serialization, propagation, loss, and corruption.

A link serializes packets one at a time at its configured rate (so an
overloaded link builds queueing delay — the congestion signal CLib's
delay-based AIMD reacts to) and delivers each after a propagation delay
plus bounded jitter.  Loss and corruption are Bernoulli per packet from a
dedicated seeded stream.

The link is event-driven rather than process-driven: serialization is
deterministic FIFO, so the transmit-complete time of every packet is known
at ``send`` time (``max(now, free_at) + transmit_ns``).  One scheduled
delivery callback per packet replaces the former pump process's three heap
entries — same timestamps, same per-stream RNG draw order, a third of the
engine events.
"""

from __future__ import annotations

from collections import deque
from functools import partial
from typing import Callable, Optional

from repro.net.packet import Packet
from repro.params import SEC
from repro.sim import Environment
from repro.sim.rng import RandomStream
from repro.telemetry.metrics import MetricsRegistry, StatsView

Deliver = Callable[[Packet], None]


class Link:
    """Unidirectional link with FIFO serialization."""

    def __init__(self, env: Environment, name: str, rate_bps: int,
                 propagation_ns: int, deliver: Deliver,
                 rng: Optional[RandomStream] = None,
                 loss_rate: float = 0.0, corruption_rate: float = 0.0,
                 jitter_ns: int = 0,
                 registry: Optional[MetricsRegistry] = None,
                 deliver_env: Optional[Environment] = None):
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        if propagation_ns < 0:
            raise ValueError(f"propagation must be non-negative, got {propagation_ns}")
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError(f"loss_rate must be in [0, 1], got {loss_rate}")
        if not 0.0 <= corruption_rate <= 1.0:
            raise ValueError(
                f"corruption_rate must be in [0, 1], got {corruption_rate}")
        if jitter_ns < 0:
            raise ValueError(f"jitter must be non-negative, got {jitter_ns}")
        self.env = env
        # Under the partitioned engine the serializer state lives with the
        # sender while the delivery callback fires on the *receiver's*
        # event wheel — the link is the lookahead edge between the two
        # logical processes.  In a flat environment both are the same.
        self.deliver_env = deliver_env if deliver_env is not None else env
        self.name = name
        self.rate_bps = rate_bps
        self.propagation_ns = propagation_ns
        self.deliver = deliver
        self.rng = rng or RandomStream(0, f"link/{name}")
        self.loss_rate = loss_rate
        self.corruption_rate = corruption_rate
        self.jitter_ns = jitter_ns
        self.up = True                          # fault injection: link state
        self._free_at = 0                       # serializer busy until here
        self._completions: deque[int] = deque()  # transmit-complete times
        self.packets_sent = 0
        self.packets_dropped = 0
        self.packets_dropped_down = 0
        self.packets_corrupted = 0
        self.bytes_sent = 0
        # Span tracing (None = disabled, the common case).
        self.tracer = None
        self.metrics = (registry if registry is not None
                        else MetricsRegistry()).scope(f"link.{name}")
        self._stats = StatsView({
            "packets_sent": self.metrics.counter(
                "packets_sent", fn=lambda: self.packets_sent),
            "packets_dropped": self.metrics.counter(
                "packets_dropped", fn=lambda: self.packets_dropped),
            "packets_dropped_down": self.metrics.counter(
                "packets_dropped_down", fn=lambda: self.packets_dropped_down),
            "packets_corrupted": self.metrics.counter(
                "packets_corrupted", fn=lambda: self.packets_corrupted),
            "bytes_sent": self.metrics.counter(
                "bytes_sent", fn=lambda: self.bytes_sent, unit="bytes"),
        })
        self.metrics.gauge("queue_depth", fn=lambda: self.queue_depth)

    def stats(self) -> dict:
        return self._stats.snapshot()

    def set_down(self) -> None:
        """Take the link down: every send is dropped, no delivery scheduled."""
        self.up = False

    def set_up(self) -> None:
        """Bring the link back up; queued serializer state was lost with it."""
        self.up = True

    def send(self, packet: Packet) -> None:
        """Transmit a packet after any queued ones (non-blocking)."""
        if not self.up:
            # A downed link is silent: the packet vanishes without touching
            # the serializer, the RNG streams, or any delivery callback, so
            # the no-fault event/draw sequence is untouched by this branch.
            self.packets_dropped_down += 1
            if self.tracer is not None:
                self.tracer.instant("drop:down", "net", self.name,
                                    args={"dst": packet.header.dst})
            return
        env = self.env
        now = env.now
        start = self._free_at
        if start < now:
            start = now
        done = start + self.transmit_ns(packet.wire_bytes)
        self._free_at = done
        self._completions.append(done)
        self.packets_sent += 1
        self.bytes_sent += packet.wire_bytes
        if self.rng.chance(self.loss_rate):
            self.packets_dropped += 1
            if self.tracer is not None:
                self.tracer.instant("drop:loss", "net", self.name,
                                    args={"dst": packet.header.dst})
            return
        if self.rng.chance(self.corruption_rate):
            self.packets_corrupted += 1
            packet.corrupt = True
            if self.tracer is not None:
                self.tracer.instant("corrupt", "net", self.name,
                                    args={"dst": packet.header.dst})
        delay = done - now + self.propagation_ns
        if self.jitter_ns:
            delay += self.rng.uniform_int(0, self.jitter_ns)
        self.deliver_env.schedule_callback(delay, partial(self.deliver, packet))

    @property
    def queue_depth(self) -> int:
        """Packets waiting behind the one currently serializing."""
        completions = self._completions
        now = self.env.now
        while completions and completions[0] <= now:
            completions.popleft()
        return len(completions) - 1 if completions else 0

    def transmit_ns(self, wire_bytes: int) -> int:
        return max(1, (wire_bytes * 8 * SEC) // self.rate_bps)

"""Physical-page allocation strategies behind :class:`PAAllocator`.

Every strategy owns the pool of ``physical_pages`` page numbers and
implements the same small surface:

* ``allocate(pid=None) -> ppn`` / ``free(ppn, pid=None)``
* ``free_pages`` — pages the strategy could hand out right now.  For the
  arena strategy this *includes* pages stashed in per-process arenas, so
  the board-level conservation invariant (present + free + reserved ==
  physical) holds for every strategy.
* ``free_ppns()`` — iterator over every free page number (invariant
  sweeps use this instead of poking at strategy internals).
* ``slow_crossings`` — how many times the operation had to touch the
  global pool ("ARM slow-path crossings"); arenas exist to amortize this.
* ``fragmentation`` — strategy-specific external-fragmentation ratio in
  ``[0, 1]``.
* ``check()`` — internal-consistency audit returning ``(tag, detail)``
  problems; the verification layer folds these into invariant sweeps.

Double frees raise :class:`DoubleFreeError` in every strategy.  The
strategies are pure bookkeeping — no simulation events, no RNG — so a
run that only swaps the strategy stays bit-identical in everything the
allocator does not itself decide.
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Dict, Iterator, List, Optional, Tuple


class OutOfMemoryError(Exception):
    """The MN has no free physical pages left."""


class DoubleFreeError(ValueError):
    """A physical page was freed while already free (or never allocated)."""


class PAStrategy:
    """Common surface for physical-page allocation strategies."""

    name = "abstract"

    def __init__(self, physical_pages: int):
        if physical_pages <= 0:
            raise ValueError(f"physical_pages must be positive, got {physical_pages}")
        self.physical_pages = physical_pages
        #: Operations that had to cross into the global pool on the ARM.
        self.slow_crossings = 0

    # -- required operations ---------------------------------------------------

    def allocate(self, pid: Optional[int] = None) -> int:
        raise NotImplementedError

    def free(self, ppn: int, pid: Optional[int] = None) -> None:
        raise NotImplementedError

    @property
    def free_pages(self) -> int:
        raise NotImplementedError

    def free_ppns(self) -> Iterator[int]:
        raise NotImplementedError

    def is_free(self, ppn: int) -> bool:
        """Whether ``ppn`` is currently free (O(1)-ish membership probe)."""
        raise NotImplementedError

    # -- metrics / audits --------------------------------------------------------

    @property
    def fragmentation(self) -> float:
        """External-fragmentation ratio in [0, 1]; 0 when not meaningful."""
        return 0.0

    def check(self) -> List[Tuple[str, str]]:
        """Audit internal bookkeeping; returns (tag, detail) problems."""
        return []

    def stats(self) -> dict:
        return {
            "strategy": self.name,
            "free_pages": self.free_pages,
            "slow_crossings": self.slow_crossings,
            "fragmentation": self.fragmentation,
        }


class FreeListStrategy(PAStrategy):
    """The paper's FIFO free-list — the default, bit-identical to the
    original ``PAAllocator``: pages come off the head in ascending order
    at boot and freed pages recycle in FIFO order.

    A shadow set detects double frees without perturbing list order.
    """

    name = "freelist"

    def __init__(self, physical_pages: int):
        super().__init__(physical_pages)
        self._free: deque[int] = deque(range(physical_pages))
        self._free_set = set(self._free)

    @property
    def free_pages(self) -> int:
        return len(self._free)

    def free_ppns(self) -> Iterator[int]:
        return iter(self._free)

    def is_free(self, ppn: int) -> bool:
        return ppn in self._free_set

    def allocate(self, pid: Optional[int] = None) -> int:
        if not self._free:
            raise OutOfMemoryError("no free physical pages")
        self.slow_crossings += 1
        ppn = self._free.popleft()
        self._free_set.discard(ppn)
        return ppn

    def free(self, ppn: int, pid: Optional[int] = None) -> None:
        if ppn in self._free_set:
            raise DoubleFreeError(f"ppn {ppn} is already free")
        self.slow_crossings += 1
        self._free.append(ppn)
        self._free_set.add(ppn)

    def check(self) -> List[Tuple[str, str]]:
        problems: List[Tuple[str, str]] = []
        if len(self._free) != len(self._free_set):
            problems.append((
                "freelist-duplicate",
                f"free list holds {len(self._free)} entries but only "
                f"{len(self._free_set)} distinct pages"))
        return problems


class SlabStrategy(PAStrategy):
    """Size-class slabs: the pool is carved into fixed runs of
    ``slab_pages`` contiguous pages; each slab is assigned to one of
    ``classes`` size classes on demand (processes hash onto classes) and
    serves single-page allocations from a per-slab LIFO free stack.

    Fully-free slabs detach from their class and return to a global
    reserve, so classes only fragment the pool while partially used.
    When a class has no partial slab and the reserve is empty, the
    allocation borrows from another class rather than reporting a false
    OOM.  ``fragmentation`` reports the fraction of free pages stranded
    inside class-assigned partial slabs.
    """

    name = "slab"

    def __init__(self, physical_pages: int, slab_pages: int = 64,
                 classes: int = 4):
        super().__init__(physical_pages)
        if slab_pages <= 0:
            raise ValueError(f"slab_pages must be positive, got {slab_pages}")
        if classes <= 0:
            raise ValueError(f"classes must be positive, got {classes}")
        self.slab_pages = min(slab_pages, physical_pages)
        self.classes = classes
        self._slab_free: List[List[int]] = []   # per-slab free stacks
        self._slab_cls: List[Optional[int]] = []  # class, None while in reserve
        self._slab_base: List[int] = []
        self._slab_size: List[int] = []
        base = 0
        while base < physical_pages:
            size = min(self.slab_pages, physical_pages - base)
            self._slab_base.append(base)
            self._slab_size.append(size)
            self._slab_free.append(list(range(base + size - 1, base - 1, -1)))
            self._slab_cls.append(None)
            base += size
        self._reserve: deque[int] = deque(range(len(self._slab_base)))
        self._partial: List[deque[int]] = [deque() for _ in range(classes)]
        self._free_set = set(range(physical_pages))
        self._free_count = physical_pages
        #: allocations served for each class (occupancy accounting)
        self.class_allocs = [0] * classes
        self.borrows = 0

    def class_of(self, pid: Optional[int]) -> int:
        return 0 if pid is None else pid % self.classes

    def _slab_of(self, ppn: int) -> int:
        return ppn // self.slab_pages

    @property
    def free_pages(self) -> int:
        return self._free_count

    def free_ppns(self) -> Iterator[int]:
        for free in self._slab_free:
            yield from free

    def is_free(self, ppn: int) -> bool:
        return ppn in self._free_set

    def _pop_partial(self, cls: int) -> Optional[int]:
        """First slab of ``cls`` with a free page, skipping stale entries."""
        queue = self._partial[cls]
        while queue:
            idx = queue[0]
            if self._slab_cls[idx] == cls and self._slab_free[idx]:
                return idx
            queue.popleft()  # reassigned or drained; drop the stale entry
        return None

    def allocate(self, pid: Optional[int] = None) -> int:
        if self._free_count == 0:
            raise OutOfMemoryError("no free physical pages")
        cls = self.class_of(pid)
        idx = self._pop_partial(cls)
        if idx is None and self._reserve:
            idx = self._reserve.popleft()
            self._slab_cls[idx] = cls
            self._partial[cls].append(idx)
        if idx is None:
            # Borrow from the first other class with space (never false-OOM).
            self.borrows += 1
            for other in range(self.classes):
                idx = self._pop_partial(other)
                if idx is not None:
                    break
        assert idx is not None  # _free_count > 0 guarantees a slab has space
        self.slow_crossings += 1
        ppn = self._slab_free[idx].pop()
        self._free_set.discard(ppn)
        self._free_count -= 1
        self.class_allocs[cls] += 1
        if not self._slab_free[idx]:
            # Fully used; it re-enters a partial queue on the next free.
            pass
        return ppn

    def free(self, ppn: int, pid: Optional[int] = None) -> None:
        if ppn in self._free_set:
            raise DoubleFreeError(f"ppn {ppn} is already free")
        self.slow_crossings += 1
        idx = self._slab_of(ppn)
        was_full = not self._slab_free[idx]
        self._slab_free[idx].append(ppn)
        self._free_set.add(ppn)
        self._free_count += 1
        cls = self._slab_cls[idx]
        if cls is None:
            # Freed into a reserve slab (page was handed out before the
            # slab fully drained back): adopt it into the freer's class.
            cls = self.class_of(pid)
            self._slab_cls[idx] = cls
            self._partial[cls].append(idx)
            try:
                self._reserve.remove(idx)
            except ValueError:
                pass
        elif was_full:
            self._partial[cls].append(idx)
        if len(self._slab_free[idx]) == self._slab_size[idx]:
            # Fully free again: detach from the class, back to the reserve.
            self._slab_cls[idx] = None
            self._reserve.append(idx)

    def occupancy(self) -> Dict[int, dict]:
        """Per-class slab occupancy accounting."""
        out: Dict[int, dict] = {}
        for cls in range(self.classes):
            slabs = [i for i, c in enumerate(self._slab_cls) if c == cls]
            pages = sum(self._slab_size[i] for i in slabs)
            free = sum(len(self._slab_free[i]) for i in slabs)
            out[cls] = {
                "slabs": len(slabs),
                "pages": pages,
                "used": pages - free,
                "free": free,
                "allocs": self.class_allocs[cls],
            }
        return out

    @property
    def fragmentation(self) -> float:
        if self._free_count == 0:
            return 0.0
        stranded = sum(
            len(self._slab_free[i])
            for i, cls in enumerate(self._slab_cls) if cls is not None)
        return stranded / self._free_count

    def check(self) -> List[Tuple[str, str]]:
        problems: List[Tuple[str, str]] = []
        total_free = 0
        seen: set[int] = set()
        for idx, free in enumerate(self._slab_free):
            base, size = self._slab_base[idx], self._slab_size[idx]
            for ppn in free:
                if not base <= ppn < base + size:
                    problems.append((
                        "slab-stray-page",
                        f"slab {idx} holds ppn {ppn} outside [{base}, {base + size})"))
                if ppn in seen:
                    problems.append((
                        "slab-duplicate-free",
                        f"ppn {ppn} appears twice in slab free stacks"))
                seen.add(ppn)
            if len(free) > size:
                problems.append((
                    "slab-overfull",
                    f"slab {idx} has {len(free)} free pages but size {size}"))
            total_free += len(free)
        if total_free != self._free_count:
            problems.append((
                "slab-count-drift",
                f"free stacks hold {total_free} pages but counter says "
                f"{self._free_count}"))
        if seen != self._free_set:
            problems.append((
                "slab-set-drift",
                f"free set tracks {len(self._free_set)} pages but stacks hold "
                f"{len(seen)} distinct pages"))
        return problems

    def stats(self) -> dict:
        out = super().stats()
        out["borrows"] = self.borrows
        out["reserve_slabs"] = len(self._reserve)
        out["occupancy"] = self.occupancy()
        return out


class BuddyStrategy(PAStrategy):
    """Binary buddy allocator: free space lives in power-of-two blocks,
    allocation splits the smallest sufficient block, free coalesces with
    the buddy (``base ^ size``) while possible.

    ``physical_pages`` need not be a power of two — the pool is covered
    by descending power-of-two top-level blocks, each self-aligned, so
    buddy arithmetic stays valid within every top block.

    ``fragmentation`` is the classic external-fragmentation ratio:
    ``1 - largest_free_block / free_pages``.
    """

    name = "buddy"

    def __init__(self, physical_pages: int):
        super().__init__(physical_pages)
        self.max_order = physical_pages.bit_length() - 1
        self._free_lists: List[List[int]] = [
            [] for _ in range(self.max_order + 1)]
        self._free_sets: List[set] = [set() for _ in range(self.max_order + 1)]
        self._alloc_order: Dict[int, int] = {}  # block base -> order
        self._free_count = 0
        base = 0
        remaining = physical_pages
        while remaining:
            order = remaining.bit_length() - 1
            self._insert_block(base, order)
            base += 1 << order
            remaining -= 1 << order

    def _insert_block(self, base: int, order: int) -> None:
        bisect.insort(self._free_lists[order], base)
        self._free_sets[order].add(base)
        self._free_count += 1 << order

    def _remove_block(self, base: int, order: int) -> None:
        idx = bisect.bisect_left(self._free_lists[order], base)
        self._free_lists[order].pop(idx)
        self._free_sets[order].discard(base)
        self._free_count -= 1 << order

    @property
    def free_pages(self) -> int:
        return self._free_count

    def free_ppns(self) -> Iterator[int]:
        for order, bases in enumerate(self._free_lists):
            for base in bases:
                yield from range(base, base + (1 << order))

    def is_free(self, ppn: int) -> bool:
        for order in range(self.max_order + 1):
            if (ppn & ~((1 << order) - 1)) in self._free_sets[order]:
                return True
        return False

    def _take(self, order: int) -> int:
        """Lowest-addressed free block of at least ``order``, split down."""
        for have in range(order, self.max_order + 1):
            if self._free_lists[have]:
                base = self._free_lists[have][0]
                self._remove_block(base, have)
                while have > order:
                    have -= 1
                    # Keep the lower half, free the upper buddy.
                    self._insert_block(base + (1 << have), have)
                return base
        raise OutOfMemoryError(
            f"no free block of order {order} ({1 << order} pages)")

    def allocate(self, pid: Optional[int] = None) -> int:
        self.slow_crossings += 1
        base = self._take(0)
        self._alloc_order[base] = 0
        return base

    def alloc_run(self, pages: int, pid: Optional[int] = None) -> int:
        """Allocate a naturally-aligned run of ``2^ceil(log2(pages))``."""
        if pages <= 0:
            raise ValueError(f"pages must be positive, got {pages}")
        order = (pages - 1).bit_length()
        if order > self.max_order:
            raise OutOfMemoryError(f"run of {pages} pages exceeds pool")
        self.slow_crossings += 1
        base = self._take(order)
        self._alloc_order[base] = order
        return base

    def _coalesce(self, base: int, order: int) -> None:
        while order < self.max_order:
            buddy = base ^ (1 << order)
            if buddy not in self._free_sets[order]:
                break
            self._remove_block(buddy, order)
            base = min(base, buddy)
            order += 1
        self._insert_block(base, order)

    def free(self, ppn: int, pid: Optional[int] = None) -> None:
        order = self._alloc_order.pop(ppn, None)
        if order is None:
            for have, bases in enumerate(self._free_sets):
                for base in bases:
                    if base <= ppn < base + (1 << have):
                        raise DoubleFreeError(f"ppn {ppn} is already free")
            raise DoubleFreeError(
                f"ppn {ppn} is not the base of an allocated block")
        self.slow_crossings += 1
        self._coalesce(ppn, order)

    @property
    def fragmentation(self) -> float:
        """1 - largest_free_block / free_pages; 0 when empty or unsplit."""
        if self._free_count == 0:
            return 0.0
        largest = 0
        for order in range(self.max_order, -1, -1):
            if self._free_lists[order]:
                largest = 1 << order
                break
        return 1.0 - largest / self._free_count

    @property
    def largest_free_block(self) -> int:
        for order in range(self.max_order, -1, -1):
            if self._free_lists[order]:
                return 1 << order
        return 0

    def check(self) -> List[Tuple[str, str]]:
        problems: List[Tuple[str, str]] = []
        covered: set[int] = set()
        total = 0
        for order, bases in enumerate(self._free_lists):
            if set(bases) != self._free_sets[order]:
                problems.append((
                    "buddy-index-drift",
                    f"order-{order} list and set disagree"))
            if bases != sorted(bases):
                problems.append((
                    "buddy-unsorted", f"order-{order} free list out of order"))
            for base in bases:
                size = 1 << order
                if base % size:
                    problems.append((
                        "buddy-misaligned",
                        f"order-{order} block at {base} is not self-aligned"))
                if base + size > self.physical_pages:
                    problems.append((
                        "buddy-out-of-range",
                        f"order-{order} block at {base} exceeds pool"))
                pages = set(range(base, base + size))
                if covered & pages:
                    problems.append((
                        "buddy-overlap",
                        f"order-{order} block at {base} overlaps another free block"))
                covered |= pages
                total += size
                buddy = base ^ size
                if order < self.max_order and base < buddy \
                        and buddy in self._free_sets[order]:
                    problems.append((
                        "buddy-lost-coalesce",
                        f"order-{order} blocks {base} and {buddy} are both "
                        f"free but not merged"))
        if total != self._free_count:
            problems.append((
                "buddy-count-drift",
                f"free blocks cover {total} pages but counter says "
                f"{self._free_count}"))
        return problems

    def stats(self) -> dict:
        out = super().stats()
        out["largest_free_block"] = self.largest_free_block
        out["free_blocks"] = {
            order: len(bases)
            for order, bases in enumerate(self._free_lists) if bases}
        return out


class ArenaStrategy(PAStrategy):
    """jemalloc-style per-process arenas over a global base strategy.

    Each PID gets a private LIFO stash of pages.  ``allocate`` serves
    from the stash for free; an empty stash refills ``batch_pages`` from
    the global pool in *one* slow-path crossing.  ``free`` pushes onto
    the stash; a stash over ``stash_max`` lazily spills its oldest half
    back to the global pool, again one crossing.  Small-object churn
    that stays within a process therefore costs ~``1/batch_pages`` of
    the crossings the plain free list pays.

    When the global pool drains, allocation reclaims from the largest
    stash instead of reporting a false OOM, so ``free_pages`` (global +
    stashed) going to zero is the only true out-of-memory condition.
    """

    name = "arena"

    def __init__(self, physical_pages: int, base: Optional[PAStrategy] = None,
                 batch_pages: int = 16, stash_max: int = 64):
        super().__init__(physical_pages)
        if batch_pages <= 0:
            raise ValueError(f"batch_pages must be positive, got {batch_pages}")
        if stash_max < batch_pages:
            raise ValueError(
                f"stash_max ({stash_max}) must be >= batch_pages ({batch_pages})")
        self.base = base if base is not None else FreeListStrategy(physical_pages)
        if self.base.physical_pages != physical_pages:
            raise ValueError("base strategy pool size mismatch")
        self.batch_pages = batch_pages
        self.stash_max = stash_max
        self._stash: Dict[Optional[int], List[int]] = {}
        self._stashed_set: set[int] = set()
        self.batch_refills = 0
        self.spills = 0
        self.reclaims = 0

    @property
    def free_pages(self) -> int:
        return self.base.free_pages + len(self._stashed_set)

    @property
    def stashed_pages(self) -> int:
        return len(self._stashed_set)

    def free_ppns(self) -> Iterator[int]:
        yield from self.base.free_ppns()
        for stash in self._stash.values():
            yield from stash

    def is_free(self, ppn: int) -> bool:
        return ppn in self._stashed_set or self.base.is_free(ppn)

    def allocate(self, pid: Optional[int] = None) -> int:
        stash = self._stash.setdefault(pid, [])
        if stash:
            ppn = stash.pop()
            self._stashed_set.discard(ppn)
            return ppn
        # One crossing refills a whole batch from the global pool.
        grabbed: List[int] = []
        for _ in range(self.batch_pages):
            if self.base.free_pages == 0:
                break
            grabbed.append(self.base.allocate(pid))
        if grabbed:
            self.slow_crossings += 1
            self.batch_refills += 1
            stash.extend(grabbed)
            self._stashed_set.update(grabbed)
            ppn = stash.pop()
            self._stashed_set.discard(ppn)
            return ppn
        # Global pool dry: reclaim from the fullest sibling arena.
        victim = None
        for key, pages in self._stash.items():
            if pages and (victim is None or len(pages) > len(self._stash[victim])):
                victim = key
        if victim is None:
            raise OutOfMemoryError("no free physical pages")
        self.slow_crossings += 1
        self.reclaims += 1
        ppn = self._stash[victim].pop()
        self._stashed_set.discard(ppn)
        return ppn

    def free(self, ppn: int, pid: Optional[int] = None) -> None:
        if ppn in self._stashed_set:
            raise DoubleFreeError(f"ppn {ppn} is already free (stashed)")
        if self.base.is_free(ppn):
            raise DoubleFreeError(f"ppn {ppn} is already free")
        stash = self._stash.setdefault(pid, [])
        stash.append(ppn)
        self._stashed_set.add(ppn)
        if len(stash) > self.stash_max:
            # Lazy spill: oldest half goes back global in one crossing.
            spill, keep = stash[:len(stash) // 2], stash[len(stash) // 2:]
            self._stash[pid] = keep
            self.slow_crossings += 1
            self.spills += 1
            for page in spill:
                self._stashed_set.discard(page)
                self.base.free(page, pid)

    @property
    def fragmentation(self) -> float:
        """Fraction of free pages fenced inside per-process stashes."""
        total = self.free_pages
        if total == 0:
            return 0.0
        return len(self._stashed_set) / total

    def check(self) -> List[Tuple[str, str]]:
        problems = self.base.check()
        seen: set[int] = set()
        for key, stash in self._stash.items():
            for ppn in stash:
                if ppn in seen:
                    problems.append((
                        "arena-duplicate-stash",
                        f"ppn {ppn} stashed twice (arena {key})"))
                seen.add(ppn)
        if seen != self._stashed_set:
            problems.append((
                "arena-set-drift",
                f"stash set tracks {len(self._stashed_set)} pages but stashes "
                f"hold {len(seen)} distinct pages"))
        overlap = seen & set(self.base.free_ppns())
        if overlap:
            problems.append((
                "arena-double-account",
                f"{len(overlap)} pages both stashed and globally free "
                f"(e.g. {sorted(overlap)[:4]})"))
        return problems

    def stats(self) -> dict:
        out = super().stats()
        out["arenas"] = len(self._stash)
        out["stashed_pages"] = len(self._stashed_set)
        out["batch_refills"] = self.batch_refills
        out["spills"] = self.spills
        out["reclaims"] = self.reclaims
        out["base_strategy"] = self.base.name
        return out


PA_STRATEGIES = {
    "freelist": FreeListStrategy,
    "slab": SlabStrategy,
    "buddy": BuddyStrategy,
    "arena": ArenaStrategy,
}


def make_pa_strategy(name: str, physical_pages: int,
                     slab_pages: int = 64, slab_classes: int = 4,
                     arena_batch_pages: int = 16,
                     arena_stash_max: int = 64) -> PAStrategy:
    """Build a PA strategy by name with the given tuning knobs."""
    if name == "freelist":
        return FreeListStrategy(physical_pages)
    if name == "slab":
        return SlabStrategy(physical_pages, slab_pages=slab_pages,
                            classes=slab_classes)
    if name == "buddy":
        return BuddyStrategy(physical_pages)
    if name == "arena":
        return ArenaStrategy(physical_pages,
                             batch_pages=min(arena_batch_pages, physical_pages),
                             stash_max=max(arena_stash_max,
                                           min(arena_batch_pages, physical_pages)))
    raise ValueError(
        f"unknown PA strategy {name!r}; choose from {sorted(PA_STRATEGIES)}")

"""VA gap-search policies behind :class:`VAAllocator` (paper section 4.2).

A policy is a candidate generator: given a process's vma tree and the
request size, it yields page-aligned candidate VAs in order.  The
allocator probes each candidate against the hash page table's
overflow-free constraint and, on failure, *sends* the first conflicting
VPN back into the generator so retry-aware policies can steer.

* ``first-fit`` — the paper's linear walk from ``VA_BASE`` (default;
  produces the exact candidate sequence of the original allocator).
* ``next-fit`` — first-fit from a per-process roving cursor, wrapping
  once; spreads allocations across the VA space, which spreads VPNs
  across hash buckets.
* ``best-fit`` — smallest gap that fits, ties to the lowest address;
  minimizes VA-space fragmentation under mixed sizes.
* ``jump`` — first-fit plus two retry-storm mitigations: on a conflict
  it jumps past the conflicting VPN (not one page), and it memoizes
  buckets seen full, skipping candidates that land in them without
  paying a probe (the memo invalidates whenever occupancy drops).

Policies are pure bookkeeping (no events, no RNG): switching only the
policy leaves everything else in a run bit-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.page_table import HashPageTable
    from repro.core.va_allocator import _ProcessSpace


class VAPolicy:
    """Candidate-VA generator for one :class:`VAAllocator`."""

    name = "abstract"

    def candidates(self, space: "_ProcessSpace", pid: int, alloc_size: int,
                   page_size: int, va_base: int, va_limit: int,
                   table: "HashPageTable") -> Generator[int, Optional[int], None]:
        """Yield candidate VAs; ``send(conflict_vpn)`` reports a failure.

        ``conflict_vpn`` is the first VPN of the candidate range whose
        insertion would overflow (or that is already mapped), or ``None``
        when the caller advances without that information.
        """
        raise NotImplementedError

    def committed(self, pid: int, va: int, alloc_size: int) -> None:
        """Hook: the allocator committed ``[va, va+alloc_size)``."""

    def freed(self, pid: int, va: int, alloc_size: int) -> None:
        """Hook: the allocator released ``[va, va+alloc_size)``."""


class FirstFitPolicy(VAPolicy):
    """Linear walk from ``va_base`` — the paper's original search."""

    name = "first-fit"

    def candidates(self, space, pid, alloc_size, page_size, va_base, va_limit,
                   table):
        va = space.next_gap(va_base, alloc_size)
        while va + alloc_size <= va_limit:
            yield va
            # "it does another search for available VAs": advance one page
            # past the failed candidate and find the next free gap.
            va = space.next_gap(va + page_size, alloc_size)


class NextFitPolicy(VAPolicy):
    """First-fit from a roving per-process cursor, wrapping once."""

    name = "next-fit"

    def __init__(self) -> None:
        self._cursor: dict[int, int] = {}

    def candidates(self, space, pid, alloc_size, page_size, va_base, va_limit,
                   table):
        start = max(self._cursor.get(pid, va_base), va_base)
        va = space.next_gap(start, alloc_size)
        while va + alloc_size <= va_limit:
            yield va
            va = space.next_gap(va + page_size, alloc_size)
        if start > va_base:  # wrap and scan the skipped prefix
            va = space.next_gap(va_base, alloc_size)
            while va < start and va + alloc_size <= va_limit:
                yield va
                va = space.next_gap(va + page_size, alloc_size)

    def committed(self, pid: int, va: int, alloc_size: int) -> None:
        self._cursor[pid] = va + alloc_size


class BestFitPolicy(VAPolicy):
    """Smallest gap that fits, ties to the lowest address.

    Gaps are snapshotted from the vma tree at call time (the tree only
    changes on commit, which ends the search), then each gap is walked
    page by page so hash-overflow retries can still make progress inside
    the chosen gap before falling over to the next-smallest one.
    """

    name = "best-fit"

    def candidates(self, space, pid, alloc_size, page_size, va_base, va_limit,
                   table):
        gaps: list[tuple[int, int]] = []  # (length, start)
        prev_end = va_base
        for allocation in space.allocations:
            if allocation.va > prev_end:
                gaps.append((allocation.va - prev_end, prev_end))
            prev_end = max(prev_end, allocation.end)
        if va_limit > prev_end:
            gaps.append((va_limit - prev_end, prev_end))
        gaps.sort()
        for length, start in gaps:
            if length < alloc_size:
                continue
            va = start
            while va + alloc_size <= start + length and va + alloc_size <= va_limit:
                yield va
                va += page_size


class JumpPolicy(VAPolicy):
    """Retry-aware first-fit: jump past conflicts, skip known-full buckets.

    Every failed probe costs the ARM a full page-table pass (the
    ``arm_retry_ns`` the Fig. 13 storms are made of).  This policy keeps
    a memo of bucket indices it has seen at capacity; candidate ranges
    touching a still-full memoized bucket are skipped *without* a probe
    (consulting the memo is ARM-local and effectively free).  On a real
    conflict it advances past the conflicting VPN instead of one page.
    The memo drops entries eagerly when a probe shows the bucket has
    drained, and clears wholesale on any free (occupancy only falls on
    frees, so that is the only moment a full bucket can open up).
    """

    name = "jump"

    def __init__(self) -> None:
        self._full_buckets: set[int] = set()

    def freed(self, pid: int, va: int, alloc_size: int) -> None:
        self._full_buckets.clear()

    def _memo_blocked(self, pid: int, first_vpn: int, pages: int,
                      table) -> Optional[int]:
        """First VPN of the range landing in a still-full memoized bucket."""
        if not self._full_buckets:
            return None
        for vpn in range(first_vpn, first_vpn + pages):
            bucket = table.bucket_of(pid, vpn)
            if bucket in self._full_buckets:
                if table.bucket_occupancy(bucket) >= table.slots_per_bucket:
                    return vpn
                self._full_buckets.discard(bucket)  # stale memo entry
        return None

    def candidates(self, space, pid, alloc_size, page_size, va_base, va_limit,
                   table):
        pages = alloc_size // page_size
        # Probe-free skipping must stay bounded: the VA space is far
        # larger than the bucket array, so once every bucket is full
        # each candidate is memo-blocked and the scan would walk clear
        # to va_limit without ever spending the caller's retry budget.
        # After num_buckets consecutive skips every bucket has been
        # consulted — stop skipping and let real probes terminate.
        skips = 0
        va = space.next_gap(va_base, alloc_size)
        while va + alloc_size <= va_limit:
            first_vpn = va // page_size
            blocked_vpn = (self._memo_blocked(pid, first_vpn, pages, table)
                           if skips < table.num_buckets else None)
            if blocked_vpn is not None:
                # Known-full bucket: skip without burning a probe.
                skips += 1
                va = space.next_gap((blocked_vpn + 1) * page_size, alloc_size)
                continue
            conflict_vpn = yield va
            skips = 0
            if conflict_vpn is not None:
                bucket = table.bucket_of(pid, conflict_vpn)
                if table.bucket_occupancy(bucket) >= table.slots_per_bucket:
                    self._full_buckets.add(bucket)
                va = space.next_gap((conflict_vpn + 1) * page_size, alloc_size)
            else:
                va = space.next_gap(va + page_size, alloc_size)


VA_POLICIES = {
    "first-fit": FirstFitPolicy,
    "next-fit": NextFitPolicy,
    "best-fit": BestFitPolicy,
    "jump": JumpPolicy,
}


def make_va_policy(name: str) -> VAPolicy:
    try:
        cls = VA_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown VA policy {name!r}; choose from {sorted(VA_POLICIES)}"
        ) from None
    return cls()

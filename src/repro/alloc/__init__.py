"""Pluggable allocation strategies for the ARM slow path (``repro.alloc``).

The paper's allocators are intentionally simple: a FIFO free-list for
physical pages and a linear first-fit gap walk for virtual ranges.  This
package keeps those as the defaults — bit-identical to the original
implementations — and adds swappable alternatives behind the same
``PAAllocator``/``VAAllocator`` surfaces:

* :class:`FreeListStrategy` — the paper's FIFO free-list (default).
* :class:`SlabStrategy` — size-class slabs with per-class free lists and
  occupancy accounting.
* :class:`BuddyStrategy` — binary buddy with split/coalesce and a
  measurable external-fragmentation ratio.
* :class:`ArenaStrategy` — jemalloc-style per-process arenas that batch
  global-pool crossings (the metric the ARM slow path pays for).

VA-side search policies live in :mod:`repro.alloc.va_policies`:
first-fit / next-fit / best-fit, plus a retry-aware candidate jumper
that skips buckets it has already seen overflow.
"""

from repro.alloc.pa_strategies import (
    PA_STRATEGIES,
    ArenaStrategy,
    BuddyStrategy,
    DoubleFreeError,
    FreeListStrategy,
    OutOfMemoryError,
    PAStrategy,
    SlabStrategy,
    make_pa_strategy,
)
from repro.alloc.va_policies import (
    VA_POLICIES,
    BestFitPolicy,
    FirstFitPolicy,
    JumpPolicy,
    NextFitPolicy,
    VAPolicy,
    make_va_policy,
)

__all__ = [
    "PA_STRATEGIES",
    "VA_POLICIES",
    "ArenaStrategy",
    "BestFitPolicy",
    "BuddyStrategy",
    "DoubleFreeError",
    "FirstFitPolicy",
    "FreeListStrategy",
    "JumpPolicy",
    "NextFitPolicy",
    "OutOfMemoryError",
    "PAStrategy",
    "SlabStrategy",
    "VAPolicy",
    "make_pa_strategy",
    "make_va_policy",
]

"""Microbenchmark drivers: the access patterns behind Figures 4-11.

A driver issues read/write streams against any object exposing the
process-generator data API and records per-op latency for the analysis
helpers to summarize.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.sim.rng import RandomStream


class AccessPattern(enum.Enum):
    SEQUENTIAL = "sequential"
    UNIFORM = "uniform"
    SAME_ADDRESS = "same_address"


class MicrobenchDriver:
    """Generates target offsets for a latency/throughput sweep."""

    def __init__(self, pattern: AccessPattern, region_bytes: int,
                 access_bytes: int, rng: Optional[RandomStream] = None,
                 alignment: int = 64):
        if region_bytes < access_bytes:
            raise ValueError("region smaller than a single access")
        if alignment <= 0:
            raise ValueError(f"alignment must be positive, got {alignment}")
        self.pattern = pattern
        self.region_bytes = region_bytes
        self.access_bytes = access_bytes
        self.alignment = alignment
        self.rng = rng or RandomStream(0, "microbench")
        self._cursor = 0
        self._slots = max(1, (region_bytes - access_bytes) // alignment + 1)

    def next_offset(self) -> int:
        """Byte offset of the next access."""
        if self.pattern is AccessPattern.SAME_ADDRESS:
            return 0
        if self.pattern is AccessPattern.SEQUENTIAL:
            offset = (self._cursor * self.alignment) % (
                self._slots * self.alignment)
            self._cursor += 1
            return offset
        return self.rng.uniform_int(0, self._slots - 1) * self.alignment

    def offsets(self, count: int) -> list[int]:
        return [self.next_offset() for _ in range(count)]

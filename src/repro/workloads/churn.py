"""Fragmentation/churn scenarios for the allocation-strategy layer.

Each scenario drives one MN through a deterministic alloc/touch/free
storm shaped to stress a different allocator pathology:

* ``small-churn`` — single-page objects, short lifetimes, several
  processes: the mix where per-process arenas amortize ARM slow-path
  crossings (the acceptance bar is a >=2x crossing cut vs the free
  list).
* ``small-large-mix`` — 80/20 single-page vs multi-page objects, the
  classic external-fragmentation driver for buddy/slab comparisons.
* ``ephemeral-longlived`` — half the objects die almost immediately,
  half pin the address space for most of the run, stranding partial
  slabs and splitting buddy blocks.
* ``retry-storm`` — the hash page table is pre-loaded to high occupancy
  first, so every further allocation probes near-full buckets: the
  Fig. 13 retry storms the retry-aware ``jump`` VA policy exists for.

``run_churn`` executes a scenario on a :class:`~repro.cluster.ClioCluster`
and returns a :class:`ChurnReport` whose fingerprint covers every
allocation outcome and completion time — two runs are bit-identical iff
their fingerprints match (the determinism contract the flat-vs-PDES and
golden tests pin).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from repro.params import KB, MB
from repro.sim.rng import RandomStream

#: Processes 6001.. host the churn mix; 7001.. host retry-storm ballast.
CHURN_PID_BASE = 6001
BALLAST_PID_BASE = 7001


@dataclass(frozen=True)
class ChurnScenario:
    """Shape of one alloc/free storm."""

    name: str
    description: str
    ops: int = 240                   # allocation events
    pids: int = 4                    # concurrent processes (arenas)
    small_pages: int = 1             # pages per small object
    large_pages: int = 8             # pages per large object
    large_frac: float = 0.0          # fraction of large objects
    ephemeral_life: tuple[int, int] = (1, 12)   # lifetime in alloc steps
    longlived_life: tuple[int, int] = (60, 120)
    longlived_frac: float = 0.0      # fraction with long lifetimes
    touch: bool = True               # fault pages in (PA churn, not just VA)
    prefill_frac: float = 0.0        # PT slot occupancy pinned before the run

    def __post_init__(self) -> None:
        if self.ops <= 0 or self.pids <= 0:
            raise ValueError("ops and pids must be positive")
        if not 0.0 <= self.large_frac <= 1.0:
            raise ValueError(f"large_frac must be in [0,1], got {self.large_frac}")
        if not 0.0 <= self.longlived_frac <= 1.0:
            raise ValueError(
                f"longlived_frac must be in [0,1], got {self.longlived_frac}")
        if not 0.0 <= self.prefill_frac < 1.0:
            raise ValueError(
                f"prefill_frac must be in [0,1), got {self.prefill_frac}")


CHURN_SCENARIOS = {
    "small-churn": ChurnScenario(
        name="small-churn",
        description="single-page objects, short lifetimes, per-pid locality "
                    "(the arena acceptance mix)"),
    "small-large-mix": ChurnScenario(
        name="small-large-mix",
        description="80/20 small/large objects fragmenting the free space",
        large_frac=0.2, longlived_frac=0.25),
    "ephemeral-longlived": ChurnScenario(
        name="ephemeral-longlived",
        description="half the objects die instantly, half pin the pool",
        ephemeral_life=(1, 4), longlived_frac=0.5),
    "retry-storm": ChurnScenario(
        name="retry-storm",
        description="page table pre-loaded to high occupancy; every alloc "
                    "fights hash-overflow retries (Fig. 13)",
        ops=120, pids=2, prefill_frac=0.75, touch=False),
}


@dataclass
class ChurnReport:
    """Everything a churn run produced, plus a determinism fingerprint."""

    scenario: str
    pa_strategy: str
    va_policy: str
    seed: int
    partitioned: bool
    ops_attempted: int = 0
    ops_failed: int = 0
    frees: int = 0
    alloc_latencies_ns: list = field(default_factory=list)
    retries_total: int = 0
    retry_max: int = 0
    retry_histogram: dict = field(default_factory=dict)
    slow_crossings: int = 0
    fragmentation: float = 0.0
    fragmentation_peak: float = 0.0
    free_pages: int = 0
    physical_pages: int = 0
    underruns: int = 0
    now_ns: int = 0
    events: int = 0
    violations: list = field(default_factory=list)
    verification: Optional[dict] = None
    oplog: list = field(default_factory=list)

    @property
    def ops_ok(self) -> int:
        return self.ops_attempted - self.ops_failed

    def percentile(self, p: float) -> int:
        """p-th percentile of simulated allocation latency (ns)."""
        if not self.alloc_latencies_ns:
            return 0
        ordered = sorted(self.alloc_latencies_ns)
        idx = min(len(ordered) - 1, int(p / 100.0 * len(ordered)))
        return ordered[idx]

    def fingerprint(self) -> str:
        """blake2b over every allocation outcome and the end state."""
        digest = hashlib.blake2b(digest_size=16)
        for record in self.oplog:
            digest.update(repr(record).encode())
        digest.update(repr((self.now_ns, self.ops_failed, self.frees,
                            self.retries_total, self.free_pages)).encode())
        return digest.hexdigest()

    def summary(self) -> dict:
        return {
            "scenario": self.scenario,
            "strategy": self.pa_strategy,
            "va_policy": self.va_policy,
            "ops": self.ops_attempted,
            "failed": self.ops_failed,
            "alloc_p50_us": self.percentile(50) / 1000.0,
            "alloc_p99_us": self.percentile(99) / 1000.0,
            "retries": self.retries_total,
            "retry_max": self.retry_max,
            "slow_crossings": self.slow_crossings,
            "fragmentation": round(self.fragmentation, 4),
            "fragmentation_peak": round(self.fragmentation_peak, 4),
            "underruns": self.underruns,
            "fingerprint": self.fingerprint(),
        }


def run_churn(scenario: str | ChurnScenario = "small-churn", *,
              pa_strategy: str = "freelist", va_policy: str = "first-fit",
              seed: int = 0, ops: Optional[int] = None,
              partitioned: bool = False, verify: bool = False,
              mn_capacity: int = 48 * MB, page_size: int = 64 * KB,
              deadline_ns: Optional[int] = None) -> ChurnReport:
    """Run one churn scenario; returns the :class:`ChurnReport`.

    ``verify=True`` attaches the full checking stack (shadow oracle +
    per-metadata-op invariant sweeps); it adds no events, so a verified
    run keeps the unverified run's fingerprint.
    """
    from repro.cluster import ClioCluster
    from repro.clib.client import RemoteAccessError
    from repro.params import AllocParams

    spec = (scenario if isinstance(scenario, ChurnScenario)
            else CHURN_SCENARIOS[scenario])
    total_ops = ops if ops is not None else spec.ops
    alloc = AllocParams(pa_strategy=pa_strategy, va_policy=va_policy)
    cluster = ClioCluster(seed=seed, mn_capacity=mn_capacity,
                          page_size=page_size, partitioned=partitioned,
                          alloc=alloc)
    verifier = cluster.enable_verification() if verify else None
    board = cluster.mn
    report = ChurnReport(scenario=spec.name, pa_strategy=pa_strategy,
                         va_policy=va_policy, seed=seed,
                         partitioned=partitioned,
                         physical_pages=board.pa_allocator.physical_pages)
    rng = RandomStream(seed, f"churn/{spec.name}")
    threads = [
        cluster.cn(0).process("mn0", pid=CHURN_PID_BASE + i).thread()
        for i in range(spec.pids)
    ]
    env = cluster.env

    def prefill_ballast(thread):
        """Pin single-page allocations until the PT reaches the target."""
        table = board.page_table
        target = int(spec.prefill_frac * table.total_slots)
        while table.entry_count < target:
            try:
                yield from thread.ralloc(page_size)
            except RemoteAccessError:
                break

    def app():
        if spec.prefill_frac:
            ballast = cluster.cn(0).process(
                "mn0", pid=BALLAST_PID_BASE).thread()
            yield from prefill_ballast(ballast)
        live: list[tuple[int, int, int]] = []  # (expiry_step, thread_idx, va)
        for step in range(total_ops):
            # Expire everything whose lifetime ended.
            for expiry, tidx, va in [entry for entry in live
                                     if entry[0] <= step]:
                live.remove((expiry, tidx, va))
                yield from threads[tidx].rfree(va)
                report.frees += 1
            tidx = rng.uniform_int(0, spec.pids - 1)
            thread = threads[tidx]
            pages = (spec.large_pages if rng.chance(spec.large_frac)
                     else spec.small_pages)
            low, high = (spec.longlived_life
                         if rng.chance(spec.longlived_frac)
                         else spec.ephemeral_life)
            lifetime = rng.uniform_int(low, high)
            retries_before = board.va_allocator.total_retries
            start = env.now
            report.ops_attempted += 1
            try:
                va = yield from thread.ralloc(pages * page_size)
            except RemoteAccessError:
                report.ops_failed += 1
                report.oplog.append((step, tidx, "fail", env.now))
                continue
            latency = env.now - start
            retries = board.va_allocator.total_retries - retries_before
            report.alloc_latencies_ns.append(latency)
            report.retries_total += retries
            report.retry_max = max(report.retry_max, retries)
            if spec.touch:
                # Fault every page in (real PA churn, not just VA ranges).
                for page in range(pages):
                    yield from thread.rwrite(va + page * page_size,
                                             bytes([step & 0xFF]))
                if step % 7 == 0:
                    data = yield from thread.rread(va, 1)
                    assert data == bytes([step & 0xFF])
            live.append((step + 1 + lifetime, tidx, va))
            report.oplog.append(
                (step, tidx, va, pages, retries, latency, env.now))
            frag = board.pa_allocator.fragmentation
            if frag > report.fragmentation_peak:
                report.fragmentation_peak = frag
        # Long-lived survivors stay allocated: final fragmentation is
        # measured with the pool still pinned, then everything drains.
        report.fragmentation = board.pa_allocator.fragmentation
        for _, tidx, va in sorted(live):
            yield from threads[tidx].rfree(va)
            report.frees += 1
        return True

    done = env.process(app())
    if deadline_ns is not None:
        cluster.run(until=deadline_ns)
    else:
        cluster.run(until=done)

    report.slow_crossings = board.pa_allocator.slow_crossings
    report.retry_histogram = dict(
        sorted(board.va_allocator.retry_histogram.items()))
    report.free_pages = board.pa_allocator.free_pages
    report.underruns = board.async_buffer.underruns + (
        board.buffer_bank.underruns if board.buffer_bank is not None else 0)
    report.now_ns = env.now
    report.events = getattr(env, "_seq", 0)
    if verifier is not None:
        report.violations = list(verifier.violations)
        report.verification = verifier.report()
        cluster.disable_verification()
    else:
        # Always run one final invariant sweep: cheap, strategy-aware.
        from repro.verify.invariants import check_board
        report.violations = check_board(board)
    return report

"""YCSB workload generation (paper section 7.2, Figure 17).

The paper's setup: 100 K key-value entries, 100 K operations per test,
1 KB values, keys drawn Zipf(theta = 0.99), three get/set mixes —
C (100% get), B (5% set), A (50% set).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.sim.rng import RandomStream, ZipfTable
from repro.workloads.zipf import zipfian_keys


@dataclass(frozen=True)
class YCSBConfig:
    """One YCSB workload mix."""

    name: str
    set_fraction: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.set_fraction <= 1.0:
            raise ValueError(f"set_fraction must be in [0,1], got {self.set_fraction}")


#: The paper's three mixes.
YCSB_WORKLOADS = {
    "A": YCSBConfig(name="A", set_fraction=0.50),
    "B": YCSBConfig(name="B", set_fraction=0.05),
    "C": YCSBConfig(name="C", set_fraction=0.00),
}


class YCSBWorkload:
    """Deterministic operation stream for one client thread."""

    def __init__(self, config: YCSBConfig, rng: RandomStream,
                 num_keys: int = 100_000, value_size: int = 1024,
                 theta: float = 0.99,
                 zipf_table: ZipfTable | None = None):
        if num_keys <= 0:
            raise ValueError(f"num_keys must be positive, got {num_keys}")
        if value_size <= 0:
            raise ValueError(f"value_size must be positive, got {value_size}")
        self.config = config
        self.rng = rng
        self.num_keys = num_keys
        self.value_size = value_size
        # The Zipf CDF is O(num_keys) to build; share it across threads.
        self.zipf = zipf_table or ZipfTable(num_keys, theta)

    def key(self, index: int) -> bytes:
        return b"user%012d" % index

    def value(self, index: int, version: int = 0) -> bytes:
        stamp = b"v%d-k%d|" % (version, index)
        return (stamp * (self.value_size // len(stamp) + 1))[:self.value_size]

    def load_phase(self) -> Iterator[tuple[bytes, bytes]]:
        """(key, value) pairs to pre-populate the store."""
        for index in range(self.num_keys):
            yield self.key(index), self.value(index)

    def operations(self, count: int) -> Iterator[tuple]:
        """Yield ('get', key) / ('set', key, value) per the configured mix."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        keys = zipfian_keys(self.rng, self.num_keys, self.zipf.theta,
                            table=self.zipf)
        for serial in range(count):
            index = next(keys)
            if self.rng.chance(self.config.set_fraction):
                yield ("set", self.key(index), self.value(index, serial))
            else:
                yield ("get", self.key(index))

"""Shared zipfian key sampling.

Every skewed workload in the repo — YCSB, the embedding batches, the
cache benchmark — draws keys from the same helper so the distribution
(and its determinism guarantees) live in exactly one place.  The draw
protocol is pinned: one ``rng.uniform()`` per key, binary-searched
through a :class:`~repro.sim.rng.ZipfTable` CDF.  Changing it would
shift every pinned golden downstream, so don't.
"""

from __future__ import annotations

from typing import Iterator

from repro.sim.rng import RandomStream, ZipfTable


def zipfian_keys(rng: RandomStream, num_keys: int, theta: float = 0.99,
                 table: ZipfTable | None = None) -> Iterator[int]:
    """Endless stream of 0-based Zipf(theta)-distributed key indices.

    Exactly one ``rng.uniform()`` draw per yielded key, so interleaving
    other draws from the same stream between ``next()`` calls is safe
    and reproducible.  Pass a prebuilt ``table`` to share the O(n) CDF
    across threads; it must match ``num_keys``/``theta``.
    """
    if num_keys <= 0:
        raise ValueError(f"num_keys must be positive, got {num_keys}")
    if table is None:
        table = ZipfTable(num_keys, theta)
    elif table.n != num_keys or table.theta != theta:
        raise ValueError(
            f"table is Zipf(n={table.n}, theta={table.theta}), "
            f"expected (n={num_keys}, theta={theta})")
    while True:
        yield table.draw(rng.uniform())

"""Workload generators: YCSB (A/B/C, Zipf keys) and microbenchmark drivers."""

from repro.workloads.microbench import AccessPattern, MicrobenchDriver
from repro.workloads.ycsb import YCSB_WORKLOADS, YCSBConfig, YCSBWorkload
from repro.workloads.zipf import zipfian_keys

__all__ = [
    "AccessPattern",
    "MicrobenchDriver",
    "YCSB_WORKLOADS",
    "YCSBConfig",
    "YCSBWorkload",
    "zipfian_keys",
]

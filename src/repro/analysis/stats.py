"""Latency/throughput statistics used by every benchmark."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.params import SEC


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile; ``fraction`` in [0, 1]."""
    if not samples:
        raise ValueError("no samples")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0,1], got {fraction}")
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def quantile(samples: Sequence[float], fraction: float) -> float:
    """Linearly-interpolated quantile (numpy's default method).

    The single shared implementation every benchmark summary uses; unlike
    nearest-rank it is exact for small sample counts (``quantile(x, 0.5)``
    of an even-length list is the average of the two middle values).
    """
    if not samples:
        raise ValueError("no samples")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0,1], got {fraction}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return float(ordered[0])
    position = fraction * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    weight = position - low
    return ordered[low] + (ordered[high] - ordered[low]) * weight


def median(samples: Sequence[float]) -> float:
    """Interpolated median (see :func:`quantile`)."""
    return quantile(samples, 0.5)


def p99(samples: Sequence[float]) -> float:
    """Interpolated 99th percentile (see :func:`quantile`)."""
    return quantile(samples, 0.99)


def mean(samples: Sequence[float]) -> float:
    if not samples:
        raise ValueError("no samples")
    return sum(samples) / len(samples)


def cdf_points(samples: Sequence[float],
               points: int = 100) -> list[tuple[float, float]]:
    """(value, cumulative fraction) pairs for plotting a CDF.

    Values come from the shared interpolated :func:`quantile`, so CDF
    curves agree with the percentile columns printed next to them.
    """
    if not samples:
        raise ValueError("no samples")
    if points < 1:
        raise ValueError(f"points must be >= 1, got {points}")
    ordered = sorted(samples)
    out = []
    for index in range(points + 1):
        fraction = index / points
        out.append((quantile(ordered, fraction), fraction))
    return out


def rate_gbps(payload_bytes: int, elapsed_ns: int) -> float:
    """Goodput in Gbit/s."""
    if elapsed_ns <= 0:
        raise ValueError(f"elapsed must be positive, got {elapsed_ns}")
    return payload_bytes * 8 / elapsed_ns   # bytes*8 / ns == Gbit/s


class LatencyRecorder:
    """Collects per-op latency samples and summarizes them."""

    def __init__(self, name: str = ""):
        self.name = name
        self.samples: list[int] = []

    def add(self, latency_ns: int) -> None:
        self.samples.append(latency_ns)

    def extend(self, latencies: Iterable[int]) -> None:
        self.samples.extend(latencies)

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def median_ns(self) -> float:
        return percentile(self.samples, 0.5)

    @property
    def p99_ns(self) -> float:
        return percentile(self.samples, 0.99)

    @property
    def p999_ns(self) -> float:
        return percentile(self.samples, 0.999)

    @property
    def mean_ns(self) -> float:
        if not self.samples:
            raise ValueError("no samples")
        return sum(self.samples) / len(self.samples)

    @property
    def max_ns(self) -> int:
        return max(self.samples)

    def summary(self) -> dict:
        return {
            "name": self.name,
            "count": len(self.samples),
            "median_us": self.median_ns / 1000,
            "mean_us": self.mean_ns / 1000,
            "p99_us": self.p99_ns / 1000,
            "p999_us": self.p999_ns / 1000,
            "max_us": self.max_ns / 1000,
        }

"""Plain-text rendering of benchmark tables and series.

Every benchmark prints the same rows/series its paper figure reports, so
a run of ``pytest benchmarks/`` doubles as a regeneration of the paper's
evaluation section in text form.
"""

from __future__ import annotations

from typing import Sequence


def render_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence], width: int = 14) -> str:
    """Fixed-width table with a title rule."""
    def fmt(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    lines = [f"== {title} =="]
    lines.append(" | ".join(fmt(header).ljust(width) for header in headers))
    lines.append("-+-".join("-" * width for _ in headers))
    for row in rows:
        lines.append(" | ".join(fmt(cell).ljust(width) for cell in row))
    return "\n".join(lines)


def render_series(title: str, x_label: str, xs: Sequence,
                  series: dict[str, Sequence], width: int = 14) -> str:
    """One x column plus one column per named series."""
    headers = [x_label] + list(series)
    rows = []
    for index, x in enumerate(xs):
        row = [x]
        for name in series:
            values = series[name]
            row.append(values[index] if index < len(values) else "")
        rows.append(row)
    return render_table(title, headers, rows, width=width)

"""Request lifecycle tracing.

A :class:`TraceCollector` hooks a cluster and records structured events
for every request: when CLib issued it, every (re)transmission, the MN's
response generation, and completion — with per-event simulated
timestamps.  Use it to answer "where did this request spend its time?"
at a finer grain than the aggregate counters.

The collector instruments by wrapping the transport's ``_emit``/pending
bookkeeping and the board's ``_send``; detaching restores the originals.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class TraceEvent(enum.Enum):
    ISSUED = "issued"            # request() admitted and assigned an ID
    SENT = "sent"                # packets handed to the NIC (per attempt)
    MN_RESPONSE = "mn_response"  # board generated the response
    COMPLETED = "completed"      # CLib matched the response
    TIMED_OUT = "timed_out"      # an attempt expired


@dataclass
class TraceRecord:
    request_id: int
    event: TraceEvent
    at_ns: int
    detail: str = ""


@dataclass
class RequestTimeline:
    """All events of one request ID, in order."""

    request_id: int
    records: list[TraceRecord] = field(default_factory=list)

    def first(self, event: TraceEvent) -> Optional[TraceRecord]:
        for record in self.records:
            if record.event is event:
                return record
        return None

    @property
    def latency_ns(self) -> Optional[int]:
        issued = self.first(TraceEvent.ISSUED)
        completed = self.first(TraceEvent.COMPLETED)
        if issued is None or completed is None:
            return None
        return completed.at_ns - issued.at_ns

    @property
    def mn_turnaround_ns(self) -> Optional[int]:
        sent = self.first(TraceEvent.SENT)
        response = self.first(TraceEvent.MN_RESPONSE)
        if sent is None or response is None:
            return None
        return response.at_ns - sent.at_ns


class TraceCollector:
    """Attachable per-cluster request tracer."""

    def __init__(self, max_requests: int = 100_000):
        if max_requests <= 0:
            raise ValueError(f"max_requests must be positive, got {max_requests}")
        self.max_requests = max_requests
        self._timelines: dict[int, RequestTimeline] = {}
        self._restorers: list = []
        self.dropped = 0

    # -- recording -------------------------------------------------------------------

    def record(self, request_id: int, event: TraceEvent, at_ns: int,
               detail: str = "") -> None:
        timeline = self._timelines.get(request_id)
        if timeline is None:
            if len(self._timelines) >= self.max_requests:
                self.dropped += 1
                return
            timeline = RequestTimeline(request_id=request_id)
            self._timelines[request_id] = timeline
        timeline.records.append(
            TraceRecord(request_id=request_id, event=event, at_ns=at_ns,
                        detail=detail))

    def timeline(self, request_id: int) -> Optional[RequestTimeline]:
        return self._timelines.get(request_id)

    def timelines(self) -> list[RequestTimeline]:
        return list(self._timelines.values())

    def completed(self) -> list[RequestTimeline]:
        return [timeline for timeline in self._timelines.values()
                if timeline.first(TraceEvent.COMPLETED) is not None]

    # -- instrumentation --------------------------------------------------------------

    def attach(self, cluster) -> None:
        """Hook every CN transport and MN board in a ClioCluster."""
        for node in cluster.cns:
            self._hook_transport(node.transport)
        for board in cluster.mns:
            self._hook_board(board)

    def detach(self) -> None:
        for restore in self._restorers:
            restore()
        self._restorers.clear()

    def _hook_transport(self, transport) -> None:
        collector = self
        env = transport.env
        original_emit = transport._emit
        original_receive = transport.receive

        def traced_emit(mn, request_id, packet_type, pid, va, size, data,
                        payload, retry_of):
            event = TraceEvent.SENT
            detail = f"{packet_type.value} -> {mn}"
            if retry_of is not None:
                detail += f" (retry of {retry_of})"
            collector.record(request_id, TraceEvent.ISSUED, env.now,
                             detail=packet_type.value)
            collector.record(request_id, event, env.now, detail=detail)
            original_emit(mn, request_id, packet_type, pid, va, size, data,
                          payload, retry_of)

        def traced_receive(packet):
            pending_before = packet.header.request_id in transport._pending
            original_receive(packet)
            if pending_before:
                state = transport._pending.get(packet.header.request_id)
                if state is not None and state.done.triggered:
                    collector.record(packet.header.request_id,
                                     TraceEvent.COMPLETED, env.now)

        transport._emit = traced_emit
        transport.receive = traced_receive
        # Replace the callback the topology holds, too.
        topology = transport.topology
        topology._receivers[transport.node_name] = traced_receive

        def restore(t=transport, r=original_receive, topo=topology):
            # Drop the instance overrides so lookup falls back to the
            # class methods (restoring identity, not just behaviour).
            t.__dict__.pop("_emit", None)
            t.__dict__.pop("receive", None)
            topo._receivers[t.node_name] = r

        self._restorers.append(restore)

    def _hook_board(self, board) -> None:
        collector = self
        env = board.env
        original_send = board._send

        def traced_send(dst, request_id, packet_type, body, **kwargs):
            collector.record(request_id, TraceEvent.MN_RESPONSE, env.now,
                             detail=f"{packet_type.value} -> {dst}")
            original_send(dst, request_id, packet_type, body, **kwargs)

        board._send = traced_send
        self._restorers.append(
            lambda b=board: b.__dict__.pop("_send", None))

    # -- summaries -------------------------------------------------------------------------

    def summary(self) -> dict:
        completed = self.completed()
        latencies = [timeline.latency_ns for timeline in completed
                     if timeline.latency_ns is not None]
        return {
            "traced_requests": len(self._timelines),
            "completed": len(completed),
            "dropped": self.dropped,
            "mean_latency_ns": (sum(latencies) / len(latencies)
                                if latencies else None),
        }

"""Request lifecycle tracing, reconstructed from telemetry spans.

A :class:`TraceCollector` answers "where did this request spend its
time?" at a finer grain than the aggregate counters: when CLib issued
each attempt, when the MN generated the response, and when CLib matched
it — with per-event simulated timestamps.

Historically the collector monkey-patched the transport's ``_emit`` and
the board's ``_send`` and restored them on detach.  It is now a pure
*view* over :class:`repro.telemetry.spans.Tracer` records: ``attach``
turns on the cluster's tracer (``ClioCluster.enable_tracing``), and the
per-request :class:`RequestTimeline` objects are derived lazily from the
transport's ``attempt:*`` spans and the board's ``mn_response`` instants.
No private method is ever replaced, so instrumented and uninstrumented
clusters run the exact same code path.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class TraceEvent(enum.Enum):
    ISSUED = "issued"            # request() admitted and assigned an ID
    SENT = "sent"                # packets handed to the NIC (per attempt)
    MN_RESPONSE = "mn_response"  # board generated the response
    COMPLETED = "completed"      # CLib matched the response
    TIMED_OUT = "timed_out"      # the attempt expired unanswered

#: Stable tie-break so same-timestamp events keep lifecycle order.
_EVENT_ORDER = {
    TraceEvent.ISSUED: 0,
    TraceEvent.SENT: 1,
    TraceEvent.MN_RESPONSE: 2,
    TraceEvent.COMPLETED: 3,
    TraceEvent.TIMED_OUT: 3,
}


@dataclass
class TraceRecord:
    request_id: int
    event: TraceEvent
    at_ns: int
    detail: str = ""


@dataclass
class RequestTimeline:
    """All events of one request ID, in order."""

    request_id: int
    records: list[TraceRecord] = field(default_factory=list)

    def first(self, event: TraceEvent) -> Optional[TraceRecord]:
        for record in self.records:
            if record.event is event:
                return record
        return None

    @property
    def latency_ns(self) -> Optional[int]:
        issued = self.first(TraceEvent.ISSUED)
        completed = self.first(TraceEvent.COMPLETED)
        if issued is None or completed is None:
            return None
        return completed.at_ns - issued.at_ns

    @property
    def mn_turnaround_ns(self) -> Optional[int]:
        sent = self.first(TraceEvent.SENT)
        response = self.first(TraceEvent.MN_RESPONSE)
        if sent is None or response is None:
            return None
        return response.at_ns - sent.at_ns


class TraceCollector:
    """Attachable per-cluster request-timeline view over the tracer."""

    def __init__(self, max_requests: int = 100_000):
        if max_requests <= 0:
            raise ValueError(f"max_requests must be positive, got {max_requests}")
        self.max_requests = max_requests
        self._cluster = None
        self._tracer = None
        # Record-index windows delimiting this collector's attach span;
        # detach freezes the end so later runs are invisible to it.
        self._span_start = 0
        self._instant_start = 0
        self._span_end: Optional[int] = None
        self._instant_end: Optional[int] = None

    # -- instrumentation --------------------------------------------------------------

    def attach(self, cluster) -> None:
        """Start collecting on a ClioCluster (enables its tracer)."""
        self._cluster = cluster
        self._tracer = cluster.enable_tracing()
        self._span_start = len(self._tracer.spans)
        self._instant_start = len(self._tracer.instants)
        self._span_end = None
        self._instant_end = None

    def detach(self) -> None:
        """Stop collecting; timelines built so far remain queryable."""
        if self._tracer is not None:
            self._span_end = len(self._tracer.spans)
            self._instant_end = len(self._tracer.instants)
        if self._cluster is not None:
            self._cluster.disable_tracing()
        self._cluster = None

    # -- timeline reconstruction ----------------------------------------------------

    def _build(self) -> tuple[dict[int, RequestTimeline], int]:
        """(timelines by request ID, dropped-record count) from spans."""
        timelines: dict[int, RequestTimeline] = {}
        dropped = 0

        def record(request_id, event, at_ns, detail=""):
            nonlocal dropped
            timeline = timelines.get(request_id)
            if timeline is None:
                if len(timelines) >= self.max_requests:
                    dropped += 1
                    return
                timeline = RequestTimeline(request_id=request_id)
                timelines[request_id] = timeline
            timeline.records.append(
                TraceRecord(request_id=request_id, event=event, at_ns=at_ns,
                            detail=detail))

        if self._tracer is None:
            return timelines, dropped

        spans = self._tracer.spans[self._span_start:self._span_end]
        for span in spans:
            if not span.name.startswith("attempt:"):
                continue
            args = span.args or {}
            request_id = args.get("request_id")
            if request_id is None:
                continue
            packet_type = span.name.split(":", 1)[1]
            retry_of = args.get("retry_of")
            detail = f"{packet_type} -> {args.get('mn')}"
            if retry_of is not None:
                detail += f" (retry of {retry_of})"
            record(request_id, TraceEvent.ISSUED, span.start_ns,
                   detail=packet_type)
            record(request_id, TraceEvent.SENT, span.start_ns, detail=detail)
            if span.end_ns is not None:
                outcome = (span.args or {}).get("outcome")
                if outcome == "ok":
                    record(request_id, TraceEvent.COMPLETED, span.end_ns)
                elif outcome == "timeout":
                    record(request_id, TraceEvent.TIMED_OUT, span.end_ns,
                           detail="timeout")

        instants = self._tracer.instants[self._instant_start:self._instant_end]
        for instant in instants:
            if instant.name != "mn_response":
                continue
            args = instant.args or {}
            request_id = args.get("request_id")
            if request_id not in timelines:
                if request_id is not None:
                    dropped += 1
                continue
            record(request_id, TraceEvent.MN_RESPONSE, instant.at_ns,
                   detail=f"{args.get('type')} -> {args.get('dst')}")

        for timeline in timelines.values():
            timeline.records.sort(
                key=lambda r: (r.at_ns, _EVENT_ORDER[r.event]))
        return timelines, dropped

    # -- queries ----------------------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Records not representable within ``max_requests`` timelines."""
        return self._build()[1]

    def timeline(self, request_id: int) -> Optional[RequestTimeline]:
        return self._build()[0].get(request_id)

    def timelines(self) -> list[RequestTimeline]:
        return list(self._build()[0].values())

    def completed(self) -> list[RequestTimeline]:
        return [timeline for timeline in self.timelines()
                if timeline.first(TraceEvent.COMPLETED) is not None]

    # -- summaries -------------------------------------------------------------------------

    def summary(self) -> dict:
        timelines, dropped = self._build()
        completed = [timeline for timeline in timelines.values()
                     if timeline.first(TraceEvent.COMPLETED) is not None]
        latencies = [timeline.latency_ns for timeline in completed
                     if timeline.latency_ns is not None]
        return {
            "traced_requests": len(timelines),
            "completed": len(completed),
            "dropped": dropped,
            "mean_latency_ns": (sum(latencies) / len(latencies)
                                if latencies else None),
        }

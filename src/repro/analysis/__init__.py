"""Statistics and report rendering for the benchmark harness."""

from repro.analysis.report import render_series, render_table
from repro.analysis.stats import LatencyRecorder, cdf_points, percentile, rate_gbps
from repro.analysis.trace import TraceCollector, TraceEvent

__all__ = [
    "LatencyRecorder",
    "TraceCollector",
    "TraceEvent",
    "cdf_points",
    "percentile",
    "rate_gbps",
    "render_series",
    "render_table",
]

#!/usr/bin/env python3
"""Clio-KV: a key-value store offloaded to the memory node, shared by CNs.

Deploys the Clio-KV offload on a CBoard, then drives it from two compute
nodes concurrently with a YCSB-B-style mix (95% get / 5% set, Zipf keys).
Every operation is a single OFFLOAD round trip; the chained hash table and
the values live in the offload's own remote address space at the MN.

Run:  python examples/shared_kv_session.py
"""

from repro import ClioCluster
from repro.analysis.stats import LatencyRecorder
from repro.apps.kv_store import ClioKV, register_kv_offload
from repro.sim.rng import RandomStream
from repro.workloads.ycsb import YCSB_WORKLOADS, YCSBWorkload

MB = 1 << 20


def main() -> None:
    cluster = ClioCluster(num_cns=2, mn_capacity=1 << 30)
    register_kv_offload(cluster.mn.extend_path, buckets=1024,
                        capacity=64 * MB)
    rng = RandomStream(7, "kv-session")

    num_keys = 200
    ops_per_client = 150
    workload_template = YCSBWorkload(
        YCSB_WORKLOADS["B"], rng.fork("load"), num_keys=num_keys,
        value_size=256)

    kv0 = ClioKV(cluster.cn(0).process("mn0").thread())
    kv1 = ClioKV(cluster.cn(1).process("mn0").thread())
    recorders = {"cn0": LatencyRecorder("cn0"), "cn1": LatencyRecorder("cn1")}

    def loader():
        for key, value in workload_template.load_phase():
            yield from kv0.put(key, value)

    print("== Clio-KV shared session ==")
    cluster.run(until=cluster.env.process(loader()))
    print(f"loaded {num_keys} keys "
          f"({cluster.env.now / 1_000_000:.2f} ms simulated)")

    def client(kv: ClioKV, name: str, seed: str):
        workload = YCSBWorkload(YCSB_WORKLOADS["B"], rng.fork(seed),
                                num_keys=num_keys, value_size=256,
                                zipf_table=workload_template.zipf)
        for op in workload.operations(ops_per_client):
            start = cluster.env.now
            if op[0] == "get":
                yield from kv.get(op[1])
            else:
                yield from kv.put(op[1], op[2])
            recorders[name].add(cluster.env.now - start)

    p0 = cluster.env.process(client(kv0, "cn0", "c0"))
    p1 = cluster.env.process(client(kv1, "cn1", "c1"))
    cluster.run(until=cluster.env.all_of([p0, p1]))

    for name, recorder in recorders.items():
        summary = recorder.summary()
        print(f"{name}: {summary['count']} ops, "
              f"median {summary['median_us']:.1f} us, "
              f"p99 {summary['p99_us']:.1f} us")
    stats = cluster.mn.stats()
    print(f"CBoard: {stats['requests_served']} requests served, "
          f"memory utilization {stats['memory_utilization']:.0%}")
    print("\nBoth CNs share one KV namespace with atomic writes and")
    print("read-committed reads — no cross-CN coordination needed.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Two CBoards behind one ToR: a process per board, striped application data.

The paper scopes a distributed-MN control plane to future work (section
3.3), but a single CN can already talk to several CBoards: each board is
independent, and the application stripes data across them — here a simple
two-way striped array with interleaved async writes.

Run:  python examples/multi_board.py
"""

from repro import ClioCluster

MB = 1 << 20
STRIPE = 1024


def main() -> None:
    cluster = ClioCluster(num_cns=1, num_mns=2, mn_capacity=256 * MB)
    env = cluster.env
    node = cluster.cn(0)
    # One Clio process (one RAS) per memory node.
    threads = [node.process(board.name).thread() for board in cluster.mns]
    state = {}

    def app():
        print("== Striping across two CBoards ==")
        bases = []
        for thread in threads:
            base = yield from thread.ralloc(16 * MB)
            bases.append(base)
        print(f"allocated a 16 MB region on each of "
              f"{[board.name for board in cluster.mns]}")

        # Write 16 stripes round-robin, all asynchronously.
        payload = [bytes([index]) * STRIPE for index in range(16)]
        start = env.now
        handles = []
        for index, chunk in enumerate(payload):
            board = index % 2
            handle = yield from threads[board].rwrite_async(
                bases[board] + (index // 2) * STRIPE, chunk)
            handles.append((board, handle))
        for board, handle in handles:
            yield from threads[board].rpoll([handle])
        write_us = (env.now - start) / 1000
        print(f"wrote 16 x {STRIPE} B stripes across 2 boards in "
              f"{write_us:.1f} us (async, overlapped)")

        # Read back and verify placement.
        start = env.now
        for index in range(16):
            board = index % 2
            data = yield from threads[board].rread(
                bases[board] + (index // 2) * STRIPE, STRIPE)
            assert data == payload[index], f"stripe {index} corrupt"
        read_us = (env.now - start) / 1000
        print(f"read + verified all stripes in {read_us:.1f} us (sync)")
        state["ok"] = True

    cluster.run(until=env.process(app()))
    assert state.get("ok")
    for board in cluster.mns:
        stats = board.stats()
        print(f"{board.name}: {stats['requests_served']} requests, "
              f"{stats['page_faults']} page faults")
    print("\nEach board manages its own memory; a LegoOS-style global")
    print("controller could federate them into one virtual space (§3.3).")


if __name__ == "__main__":
    main()

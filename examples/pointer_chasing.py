#!/usr/bin/env python3
"""Pointer chasing: radix-tree search offloaded to the memory node.

Builds the same radix tree twice — once on Clio (searching via the
extended pointer-chasing API that runs *at* the MN, one round trip per
tree level) and once on native RDMA (the client walks node by node, one
round trip per node) — and compares search latency as the tree grows.
This is the paper's Figure 16 experiment at example scale.

Run:  python examples/pointer_chasing.py
"""

from repro import ClioCluster
from repro.apps.radix_tree import ClioRadixTree, RDMARadixTree, register_chase_offload
from repro.baselines.rdma import RDMAMemoryNode
from dataclasses import replace

from repro.params import BackendParams, ClioParams
from repro.sim import Environment

MB = 1 << 20


def build_keys(count: int) -> list[bytes]:
    return [b"key-%06d" % index for index in range(count)]


def clio_search_us(keys: list[bytes], probes: list[bytes]) -> float:
    cluster = ClioCluster(mn_capacity=1 << 30)
    register_chase_offload(cluster.mn.extend_path)
    thread = cluster.cn(0).process("mn0").thread()
    tree = ClioRadixTree(thread)
    latencies: list[int] = []

    def app():
        yield from tree.setup(capacity_nodes=1 << 17)
        for index, key in enumerate(keys):
            yield from tree.insert(key, index + 1)
        for probe in probes:
            start = cluster.env.now
            value = yield from tree.search(probe)
            assert value is not None
            latencies.append(cluster.env.now - start)

    cluster.run(until=cluster.env.process(app()))
    return sum(latencies) / len(latencies) / 1000


def rdma_search_us(keys: list[bytes], probes: list[bytes]) -> float:
    env = Environment()
    params = replace(ClioParams.prototype(),
                     backend=BackendParams(dram_capacity=1 << 30))
    node = RDMAMemoryNode(env, params)
    tree = RDMARadixTree(env, node, capacity_nodes=1 << 17)
    latencies: list[int] = []

    def app():
        yield from tree.setup()
        for index, key in enumerate(keys):
            yield from tree.insert(key, index + 1)
        for probe in probes:
            start = env.now
            value = yield from tree.search(probe)
            assert value is not None
            latencies.append(env.now - start)

    env.run(until=env.process(app()))
    return sum(latencies) / len(latencies) / 1000


def main() -> None:
    print("== Radix-tree search: offloaded pointer chasing vs RDMA walks ==")
    print(f"{'keys':>6} | {'Clio (us)':>10} | {'RDMA (us)':>10} | {'speedup':>8}")
    print("-" * 45)
    for count in (64, 256, 1024):
        keys = build_keys(count)
        probes = keys[:: max(1, count // 16)][:16]
        clio = clio_search_us(keys, probes)
        rdma = rdma_search_us(keys, probes)
        print(f"{count:>6} | {clio:>10.1f} | {rdma:>10.1f} | "
              f"{rdma / clio:>7.1f}x")
    print("\nClio pays one round trip per tree level (the chase runs at the")
    print("MN); RDMA pays one per node visited, so it falls behind as the")
    print("sibling lists grow.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: allocate, read, write, lock, and poll disaggregated memory.

Builds a one-CN / one-CBoard cluster and walks the core CLib API from the
paper's Figure 1: ralloc, synchronous and asynchronous rread/rwrite,
rpoll, rlock/runlock, rfence, and atomics — printing the simulated time
each step takes.

Run:  python examples/quickstart.py
"""

from repro import ClioCluster

MB = 1 << 20


def main() -> None:
    cluster = ClioCluster(num_cns=1, mn_capacity=256 * MB)
    env = cluster.env
    thread = cluster.cn(0).process("mn0").thread()

    def app():
        print("== Clio quickstart ==")

        t0 = env.now
        remote_addr = yield from thread.ralloc(4 * MB)
        print(f"ralloc(4 MB)           -> va={remote_addr:#x}  "
              f"({(env.now - t0) / 1000:.1f} us, slow path)")

        message = b"hello, disaggregated world"
        t0 = env.now
        yield from thread.rwrite(remote_addr, message)
        print(f"rwrite({len(message)}B, sync)   -> done "
              f"({(env.now - t0) / 1000:.2f} us; first touch page-faulted "
              f"in hardware)")

        t0 = env.now
        data = yield from thread.rread(remote_addr, len(message))
        assert data == message
        print(f"rread({len(message)}B, sync)    -> {data!r} "
              f"({(env.now - t0) / 1000:.2f} us, TLB hit)")

        # Asynchronous writes overlap; CLib enforces same-page ordering.
        t0 = env.now
        e0 = yield from thread.rwrite_async(remote_addr, b"A" * 512)
        e1 = yield from thread.rwrite_async(remote_addr + 1 * MB, b"B" * 512)
        yield from thread.rpoll([e0, e1])
        print(f"2x rwrite_async + rpoll -> done ({(env.now - t0) / 1000:.2f} us, "
              f"independent pages overlap)")

        # A remote lock is an 8-byte word; TAS executes at the MN.
        lock = yield from thread.ralloc(8)
        t0 = env.now
        yield from thread.rlock(lock)
        yield from thread.runlock(lock)
        print(f"rlock + runlock         -> done ({(env.now - t0) / 1000:.2f} us, "
              f"atomics at MN)")

        old = yield from thread.rfaa(remote_addr + 2 * MB, 5)
        now = yield from thread.rfaa(remote_addr + 2 * MB, 0)
        print(f"rfaa(+5)                -> old={old}, now={now}")

        yield from thread.rfence()
        print("rfence                  -> all in-flight requests drained")

        stats = cluster.mn.stats()
        print(f"\nCBoard stats: {stats['requests_served']} requests, "
              f"{stats['page_faults']} hardware page faults, "
              f"TLB hit rate {stats['tlb_hit_rate']:.0%}")
        print(f"Total simulated time: {env.now / 1000:.1f} us")

    cluster.run(until=env.process(app()))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Chaos recovery: crash the memory node mid-workload and watch it heal.

Runs a YCSB-style read/write mix on two compute nodes while a seeded
fault schedule fail-stops the CBoard at 1 ms and powers it back on at
2.5 ms.  The crash wipes every piece of volatile MN state (TLB, retry
ring, in-flight pipeline work) but the page table survives, so the
workload resumes against the same virtual addresses — the paper's
memory-node crash-recovery argument, observable:

* requests in the crash window fail with a *typed* ``RequestFailed``
  after bounded retransmission (never a hang);
* post-restart throughput recovers to within a few percent of the
  pre-crash rate once the TLB re-warms;
* the whole run is bit-identical for the same seed.

Run:  python examples/chaos_recovery.py
"""

from repro.faults.scenarios import run_chaos


def main() -> None:
    print("== chaos recovery: board crash mid-YCSB ==")
    report = run_chaos("board-crash", seed=1234)
    crash_ns, restart_ns = report.crash_window

    print(f"fault timeline: crash mn0 @ {crash_ns / 1e6:.1f} ms, "
          f"restart @ {restart_ns / 1e6:.1f} ms")
    for at_ns, kind, target, applied in report.faults:
        print(f"  {at_ns / 1e6:6.2f} ms  {kind:<14} {target}"
              f"{'' if applied else '  (skipped)'}")

    print(f"\nworkload: {len(report.ops)} ops across "
          f"{len(report.cn_counters)} CNs — "
          f"{report.completed_ops} ok, {report.failed_ops} failed (typed)")

    # Error-rate summary around the crash window.
    during = [o for o in report.ops
              if crash_ns <= o.started_ns < restart_ns]
    failed_during = sum(1 for o in during if o.status != "ok")
    print(f"crash window: {len(during)} ops started, "
          f"{failed_during} failed with RequestFailed "
          f"(bounded retries, no hangs)")

    tput = report.phase_throughput()
    print(f"\nthroughput before crash : {tput['pre_ops_per_sec']:>10,.0f} ops/s"
          f"  ({tput['pre_ops']} ops)")
    print(f"throughput after restart: {tput['post_ops_per_sec']:>10,.0f} ops/s"
          f"  ({tput['post_ops']} ops)")
    print(f"recovery                : {tput['recovery_ratio']:.1%} "
          f"of pre-crash rate")

    mn = report.board_counters["mn0"]
    print(f"\nmn0 after the run: crashes={mn['crashes']} "
          f"restarts={mn['restarts']} "
          f"packets_dropped_dead={mn['packets_dropped_dead']} "
          f"responses_discarded={mn['responses_discarded']}")

    problems = report.check_invariants()
    if problems:
        raise SystemExit("invariants violated: " + "; ".join(problems))
    print("invariants: every request completed or failed typed; "
          "counters balance; no worker hung")

    rerun = run_chaos("board-crash", seed=1234)
    assert rerun.fingerprint() == report.fingerprint()
    print("determinism: same-seed rerun is bit-identical")


if __name__ == "__main__":
    main()

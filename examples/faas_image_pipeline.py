#!/usr/bin/env python3
"""FaaS-style image pipeline: many isolated clients sharing one CBoard.

Each client is its own Clio process (its own protected RAS — the paper's
R5), compressing and decompressing photo collections stored in
disaggregated memory.  The per-client runtime stays flat as clients are
added — the Figure 15 behaviour — because Clio needs no per-client MR
state at the memory node.

Run:  python examples/faas_image_pipeline.py
"""

from repro import ClioCluster
from repro.apps.image_compression import ImageCompressionClient
from repro.sim.rng import RandomStream

MB = 1 << 20


def run_scale(num_clients: int, operations: int = 3) -> float:
    """Average per-client runtime (us) with ``num_clients`` running."""
    cluster = ClioCluster(num_cns=min(4, num_clients), mn_capacity=1 << 30)
    rng = RandomStream(42, "faas")
    runtimes: list[int] = []
    processes = []

    for index in range(num_clients):
        node = cluster.cn(index % len(cluster.cns))
        thread = node.process("mn0").thread()
        client = ImageCompressionClient(thread, rng.fork(f"client{index}"),
                                        image_side=64, slots=2)

        def workload(client=client):
            yield from client.setup()
            runtime = yield from client.run_workload(operations)
            runtimes.append(runtime)

        processes.append(cluster.env.process(workload()))

    cluster.run(until=cluster.env.all_of(processes))
    return sum(runtimes) / len(runtimes) / 1000


def main() -> None:
    print("== FaaS image pipeline on Clio ==")
    print(f"{'clients':>8} | {'avg runtime/client (us)':>24}")
    print("-" * 36)
    for clients in (1, 2, 4, 8):
        runtime = run_scale(clients)
        print(f"{clients:>8} | {runtime:>24.1f}")
    print("\nRuntime grows only once the MN's network port saturates —")
    print("Clio keeps no per-client state at the memory node (protection")
    print("is a PID per process, not a per-client MR), so adding clients")
    print("never adds metadata cost. Compare benchmarks/test_fig15_*,")
    print("where RDMA degrades from per-client MR registration as well.")


if __name__ == "__main__":
    main()

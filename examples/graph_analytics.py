#!/usr/bin/env python3
"""Graph, analytics, and embedding workloads over disaggregated memory.

The paper opens with "graph computing, data analytics, and deep learning
have increasing demand for accesses to large amounts of memory" — this
example runs all three on Clio: a BFS whose adjacency lists live at the
MN, a filter/aggregate over remote columns with a pipelined scan, and a
DLRM-style embedding gather including the one-round-trip offloaded
variant.

Run:  python examples/graph_analytics.py
"""

from repro import ClioCluster
from repro.apps.analytics import RemoteColumnTable
from repro.apps.embeddings import RemoteEmbeddingTable, register_gather_offload
from repro.apps.graph import RemoteGraph, random_graph, reference_bfs
from repro.sim.rng import RandomStream

MB = 1 << 20


def main() -> None:
    cluster = ClioCluster(mn_capacity=1 << 30)
    env = cluster.env
    rng = RandomStream(17, "graph-analytics")

    # --- graph: BFS over remote adjacency lists ---------------------------
    adjacency = random_graph(400, avg_degree=5, rng=rng.fork("graph"))
    source = max(range(len(adjacency)), key=lambda v: len(adjacency[v]))
    graph = RemoteGraph(cluster.cn(0).process("mn0").thread())
    timings = {}

    def graph_app():
        yield from graph.load(adjacency)
        print("== Graph: BFS over remote CSR ==")
        print(f"{graph.num_vertices} vertices, {graph.num_edges} edges, "
              f"source degree {len(adjacency[source])}")
        for label, asynchronous in (("sync", False), ("async", True)):
            start = env.now
            levels = yield from graph.bfs(source, asynchronous=asynchronous)
            timings[label] = env.now - start
            reached = sum(1 for level in levels if level >= 0)
            assert levels == reference_bfs(adjacency, source)
            print(f"  {label:5s}: reached {reached} vertices in "
                  f"{timings[label] / 1000:.1f} us")
        print(f"  async speedup: {timings['sync'] / timings['async']:.1f}x "
              f"(frontier lists fetched with overlapped round trips)")

    cluster.run(until=env.process(graph_app()))

    # --- analytics: filter + aggregate over remote columns ----------------
    rows = 4000
    data_rng = rng.fork("table")
    data = {
        "price": [data_rng.uniform_int(1, 1000) for _ in range(rows)],
        "qty": [data_rng.uniform_int(1, 20) for _ in range(rows)],
    }
    table = RemoteColumnTable(cluster.cn(0).process("mn0").thread(),
                              chunk_rows=256, pipeline_depth=8)

    def table_app():
        yield from table.load(data)
        print("\n== Analytics: SELECT sum(qty) WHERE price > 900 ==")
        for label, asynchronous in (("sync", False), ("async", True)):
            start = env.now
            matches, total = yield from table.filter_aggregate(
                "price", lambda value: value > 900,
                aggregate_column="qty", asynchronous=asynchronous)
            elapsed = env.now - start
            print(f"  {label:5s}: {matches} rows, sum={total}, "
                  f"{elapsed / 1000:.1f} us")
            timings[f"table_{label}"] = elapsed
        expected = sum(q for p, q in zip(data["price"], data["qty"])
                       if p > 900)
        print(f"  verified against local computation (sum={expected})")
        print(f"  pipelined scan speedup: "
              f"{timings['table_sync'] / timings['table_async']:.1f}x")

    cluster.run(until=env.process(table_app()))

    # --- deep learning: embedding gathers ----------------------------------
    register_gather_offload(cluster.mn.extend_path)
    table2 = RemoteEmbeddingTable(cluster.cn(0).process("mn0").thread(),
                                  rows=512, dim=64)

    def embedding_app():
        yield from table2.initialize(rng.fork("emb"))
        batch = table2.batch_of(48, rng.fork("batch"))
        print("\n== Deep learning: 48-row embedding gather (512x64 table) ==")
        for strategy in ("sync", "async", "offload"):
            start = env.now
            rows = yield from table2.gather(batch, strategy=strategy)
            elapsed = env.now - start
            assert len(rows) == len(batch)
            note = {"sync": "one RTT per row",
                    "async": "overlapped RTTs",
                    "offload": "ONE RTT, gather runs at the MN"}[strategy]
            print(f"  {strategy:7s}: {elapsed / 1000:7.1f} us  ({note})")

    cluster.run(until=env.process(embedding_app()))
    print("\nBig cold structures live at the MN; hot scratch state stays")
    print("CN-local — the split the paper's motivation assumes.")


if __name__ == "__main__":
    main()

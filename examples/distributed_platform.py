#!/usr/bin/env python3
"""A distributed memory platform: global controller, migration, and a
transparent cache — the paper's section 3.3 extensions, running together.

Three CBoards behind one ToR.  A global controller places coarse regions
on the least-utilized board and migrates them away when a board crosses
its memory-pressure threshold (LegoOS-style two-level management).  On
top, a transparent local cache serves a scan workload without explicit
rread/rwrite calls.

Run:  python examples/distributed_platform.py
"""

from repro import ClioCluster
from repro.clib.transparent import TransparentMemory
from repro.distributed import DistributedAddressSpace, GlobalController

KB = 1 << 10
MB = 1 << 20


def main() -> None:
    cluster = ClioCluster(num_cns=1, num_mns=3, mn_capacity=64 * MB)
    controller = GlobalController(cluster.env, cluster.mns,
                                  pressure_threshold=0.6)
    space = DistributedAddressSpace(cluster.cn(0), controller, pid=4242)
    state = {}

    def app():
        print("== Distributed platform: 3 CBoards, one address space ==")
        regions = []
        for index in range(4):
            dva = yield from space.alloc(12 * MB)
            yield from space.write(dva, b"region-%d" % index)
            regions.append(dva)
        print("placement after 4 x 12MB allocations:")
        for dva, mn in space.placement().items():
            print(f"  dva {dva:#x} -> {mn}")

        # Pressure mn0 with ballast, then let the controller rebalance.
        ballast = yield from cluster.mns[0].slow_path.handle_alloc(
            pid=1, size=28 * MB)
        assert ballast.ok
        pressured = controller.pressured_boards()
        print(f"pressured boards: {pressured}")
        moved = yield from controller.rebalance()
        print(f"controller migrated {moved} region(s); "
              f"total migrations={controller.migrations}")

        # Data survives migration; the CN refreshes its lease on demand.
        for index, dva in enumerate(regions):
            data = yield from space.read(dva, 8)
            assert data == b"region-%d" % index
        print(f"all regions verified after migration "
              f"(lease refreshes: {space.lease_refreshes})")
        state["platform_ok"] = True

    cluster.run(until=cluster.env.process(app()))
    assert state.get("platform_ok")

    # --- transparent interface on one board --------------------------------
    thread = cluster.cn(0).process("mn0").thread()
    tmem = TransparentMemory(thread, 8 * MB, cache_pages=16,
                             cache_page_size=64 * KB)

    def scan_app():
        yield from tmem.attach()
        # Sequential scan, three passes: first pass misses, rest hit.
        for _ in range(3):
            for offset in range(0, 1 * MB, 64 * KB):
                yield from tmem.write(offset, b"%08d" % offset)
                yield from tmem.read(offset, 8)
        yield from tmem.flush()

    cluster.run(until=cluster.env.process(scan_app()))
    print("\n== Transparent cache over mn0 ==")
    print(f"hits={tmem.hits} misses={tmem.misses} "
          f"hit rate={tmem.hit_rate:.0%}, writebacks={tmem.writebacks}")
    print("\nUnmodified CBoards support explicit, transparent, and")
    print("federated usage — the CN side decides (paper §3.3).")


if __name__ == "__main__":
    main()
